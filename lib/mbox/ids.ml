open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

(* ------------------------------------------------------------------ *)
(* Connection records (per-flow supporting state)                      *)
(* ------------------------------------------------------------------ *)

type tcp_state = Ts_syn | Ts_synack | Ts_est | Ts_closed | Ts_reset_orig | Ts_reset_resp

type conn = {
  orig : Five_tuple.t;  (* originator direction *)
  mutable started : float;
  mutable last_seen : float;
  mutable tcp : tcp_state;
  mutable history : string;
  mutable orig_pkts : int;
  mutable orig_bytes : int;
  mutable resp_pkts : int;
  mutable resp_bytes : int;
  mutable open_http : (string * string * string) list;  (* pending requests *)
  mutable http_done : (string * string * string * int) list;
  mutable reassembly : string;  (* deep analyzer-tree state *)
  mutable logged : bool;
}

type conn_entry = {
  ce_tuple : Five_tuple.t;
  ce_start : float;
  ce_duration : float;
  ce_orig_bytes : int;
  ce_resp_bytes : int;
  ce_state : string;
  ce_anomalous : bool;
}

type http_entry = {
  he_tuple : Five_tuple.t;
  he_method : string;
  he_host : string;
  he_uri : string;
  he_status : int;
}

type alert = { al_time : float; al_kind : string; al_source : string; al_detail : string }

(* Scan-detector record (shared supporting state). *)
type scan_rec = { mutable syn_count : int; mutable alerted : bool }

type t = {
  base : Mb_base.t;
  table : conn State_table.t;
  scan : (string, scan_rec) Hashtbl.t;  (* keyed by source IP string *)
  mutable scan_cloned : bool;  (* raises re-process events when scan state updates *)
  mutable conn_log_rev : conn_entry list;
  mutable http_log_rev : http_entry list;
  mutable alerts_rev : alert list;
  mutable anomalies : int;
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.ms 0.3;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 50.0;
    serialize_per_chunk = Time.us 500.0;
    serialize_per_byte = Time.us 0.2;
    deserialize_per_chunk = Time.us 80.0;
    deserialize_per_byte = Time.us 0.04;
  }

let tcp_state_to_string = function
  | Ts_syn -> "S0"
  | Ts_synack -> "S1"
  | Ts_est -> "S1"
  | Ts_closed -> "SF"
  | Ts_reset_orig -> "RSTO"
  | Ts_reset_resp -> "RSTR"

let tcp_state_of_string = function
  | "S0" -> Ts_syn
  | "S1" -> Ts_est
  | "SF" -> Ts_closed
  | "RSTO" -> Ts_reset_orig
  | "RSTR" -> Ts_reset_resp
  | s -> invalid_arg (Printf.sprintf "Ids.tcp_state_of_string: %S" s)

(* Reassembly-buffer contents deterministic in the flow identity, so a
   moved record round-trips bit-identically.  Its size grows with
   connection activity, making HTTP-flow chunks substantially larger
   than idle-flow chunks, as in Bro. *)
let reassembly_for tuple bytes =
  let n = 256 + min 1024 (bytes / 8) in
  let seed = Hashtbl.hash (Five_tuple.to_string tuple) in
  let g = Prng.create ~seed in
  String.init n (fun _ -> Char.chr (97 + Prng.int g 26))

(* ------------------------------------------------------------------ *)
(* Serialization (the paper's libboost serialization of >100 classes)  *)
(* ------------------------------------------------------------------ *)

let tuple_to_json tup =
  Json.String (Five_tuple.to_string tup)

let tuple_of_json j =
  (* Inverse of Five_tuple.to_string: "tcp a:p>b:q". *)
  let s = Json.get_string j in
  match String.split_on_char ' ' s with
  | [ proto; rest ] -> (
    match String.split_on_char '>' rest with
    | [ a; b ] ->
      let split_ep e =
        match String.rindex_opt e ':' with
        | Some i ->
          ( Addr.of_string (String.sub e 0 i),
            int_of_string (String.sub e (i + 1) (String.length e - i - 1)) )
        | None -> invalid_arg "Ids.tuple_of_json: missing port"
      in
      let src_ip, src_port = split_ep a and dst_ip, dst_port = split_ep b in
      {
        Five_tuple.src_ip;
        dst_ip;
        src_port;
        dst_port;
        proto = Packet.proto_of_string proto;
      }
    | _ -> invalid_arg "Ids.tuple_of_json: malformed tuple")
  | _ -> invalid_arg "Ids.tuple_of_json: malformed tuple"

let conn_to_json c =
  let http_txn (m, h, u) =
    Json.Assoc [ ("method", Json.String m); ("host", Json.String h); ("uri", Json.String u) ]
  in
  let http_done (m, h, u, st) =
    Json.Assoc
      [
        ("method", Json.String m);
        ("host", Json.String h);
        ("uri", Json.String u);
        ("status", Json.Int st);
      ]
  in
  Json.Assoc
    [
      ("orig", tuple_to_json c.orig);
      ("started", Json.Float c.started);
      ("last", Json.Float c.last_seen);
      ("tcp", Json.String (tcp_state_to_string c.tcp));
      ("history", Json.String c.history);
      ("orig_pkts", Json.Int c.orig_pkts);
      ("orig_bytes", Json.Int c.orig_bytes);
      ("resp_pkts", Json.Int c.resp_pkts);
      ("resp_bytes", Json.Int c.resp_bytes);
      (* The analyzer tree: each analyzer contributes its own nested
         state, standing in for Bro's tree of serialized objects. *)
      ( "analyzers",
        Json.List
          [
            Json.Assoc
              [
                ("name", Json.String "TCP");
                ("state", Json.String (tcp_state_to_string c.tcp));
                ("reassembly", Json.String c.reassembly);
              ];
            Json.Assoc
              [
                ("name", Json.String "HTTP");
                ("open", Json.List (List.map http_txn c.open_http));
                ("done", Json.List (List.map http_done c.http_done));
              ];
          ] );
      ("logged", Json.Bool c.logged);
    ]

let conn_of_json j =
  let analyzers = Json.get_list (Json.member "analyzers" j) in
  let find_analyzer name =
    List.find
      (fun a -> String.equal (Json.get_string (Json.member "name" a)) name)
      analyzers
  in
  let tcp_a = find_analyzer "TCP" and http_a = find_analyzer "HTTP" in
  let txn a =
    ( Json.get_string (Json.member "method" a),
      Json.get_string (Json.member "host" a),
      Json.get_string (Json.member "uri" a) )
  in
  let txn_done a =
    let m, h, u = txn a in
    (m, h, u, Json.get_int (Json.member "status" a))
  in
  {
    orig = tuple_of_json (Json.member "orig" j);
    started = Json.get_float (Json.member "started" j);
    last_seen = Json.get_float (Json.member "last" j);
    tcp = tcp_state_of_string (Json.get_string (Json.member "tcp" j));
    history = Json.get_string (Json.member "history" j);
    orig_pkts = Json.get_int (Json.member "orig_pkts" j);
    orig_bytes = Json.get_int (Json.member "orig_bytes" j);
    resp_pkts = Json.get_int (Json.member "resp_pkts" j);
    resp_bytes = Json.get_int (Json.member "resp_bytes" j);
    open_http = List.map txn (Json.get_list (Json.member "open" http_a));
    http_done = List.map txn_done (Json.get_list (Json.member "done" http_a));
    reassembly = Json.get_string (Json.member "reassembly" tcp_a);
    logged = Json.get_bool (Json.member "logged" j);
  }

let scan_to_json scan =
  Json.Assoc
    (Hashtbl.fold
       (fun src r acc ->
         (src, Json.Assoc [ ("syns", Json.Int r.syn_count); ("alerted", Json.Bool r.alerted) ])
         :: acc)
       scan [])

let scan_merge_from_json scan j =
  match j with
  | Json.Assoc fields ->
    List.iter
      (fun (src, v) ->
        let syns = Json.get_int (Json.member "syns" v) in
        let alerted = Json.get_bool (Json.member "alerted" v) in
        match Hashtbl.find_opt scan src with
        | Some r ->
          r.syn_count <- r.syn_count + syns;
          r.alerted <- r.alerted || alerted
        | None -> Hashtbl.replace scan src { syn_count = syns; alerted })
      fields
  | _ -> invalid_arg "Ids.scan_merge_from_json: not an object"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create engine ?recorder ?telemetry ?(cost = default_cost) ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"bro" ~cost () in
  let config = Mb_base.config base in
  Config_tree.set config [ "signatures" ]
    [ Json.String "cmd.exe"; Json.String "/etc/passwd"; Json.String "../.." ];
  Config_tree.set config [ "scan"; "threshold" ] [ Json.Int 20 ];
  Config_tree.set config [ "http"; "ports" ] [ Json.Int 80; Json.Int 8080 ];
  {
    base;
    table = State_table.create ~granularity:Hfl.full_granularity ();
    scan = Hashtbl.create 64;
    scan_cloned = false;
    conn_log_rev = [];
    http_log_rev = [];
    alerts_rev = [];
    anomalies = 0;
  }

let base t = t.base

(* ------------------------------------------------------------------ *)
(* Logging and alerting (external side-effects)                        *)
(* ------------------------------------------------------------------ *)

let log_conn t c ~anomalous =
  if not c.logged then begin
    c.logged <- true;
    let entry =
      {
        ce_tuple = c.orig;
        ce_start = c.started;
        ce_duration = c.last_seen -. c.started;
        ce_orig_bytes = c.orig_bytes;
        ce_resp_bytes = c.resp_bytes;
        ce_state = tcp_state_to_string c.tcp;
        ce_anomalous = anomalous;
      }
    in
    t.conn_log_rev <- entry :: t.conn_log_rev;
    if anomalous then t.anomalies <- t.anomalies + 1
  end

let emit_alert t ~kind ~source ~detail =
  t.alerts_rev <-
    {
      al_time = Time.to_seconds (Mb_base.now t.base);
      al_kind = kind;
      al_source = source;
      al_detail = detail;
    }
    :: t.alerts_rev;
  Mb_base.record t.base ~kind:"alert" ~detail:(kind ^ " " ^ detail)

let signatures t =
  match Config_tree.get (Mb_base.config t.base) [ "signatures" ] with
  | [ { values; _ } ] -> List.filter_map (function Json.String s -> Some s | _ -> None) values
  | _ -> []

let scan_threshold t =
  match Config_tree.get (Mb_base.config t.base) [ "scan"; "threshold" ] with
  | [ { values = Json.Int n :: _; _ } ] -> n
  | _ -> 20

(* ------------------------------------------------------------------ *)
(* Packet processing                                                   *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let update_scan t src ~side_effects =
  let key = Addr.to_string src in
  let r =
    match Hashtbl.find_opt t.scan key with
    | Some r -> r
    | None ->
      let r = { syn_count = 0; alerted = false } in
      Hashtbl.replace t.scan key r;
      r
  in
  r.syn_count <- r.syn_count + 1;
  if r.syn_count > scan_threshold t && not r.alerted then begin
    r.alerted <- true;
    if side_effects then
      emit_alert t ~kind:"port-scan" ~source:key
        ~detail:(Printf.sprintf "%d connection attempts" r.syn_count)
  end

let process t (p : Packet.t) ~side_effects =
  let tup = Five_tuple.of_packet p in
  let ts = Time.to_seconds p.ts in
  let entry, created =
    State_table.find_or_create t.table tup ~default:(fun () ->
        {
          orig = tup;
          started = ts;
          last_seen = ts;
          tcp = (if p.flags.syn then Ts_syn else Ts_est);
          history = (if p.flags.syn then "S" else "^");
          orig_pkts = 0;
          orig_bytes = 0;
          resp_pkts = 0;
          resp_bytes = 0;
          open_http = [];
          http_done = [];
          reassembly = "";
          logged = false;
        })
  in
  let c = entry.value in
  let from_orig = Five_tuple.equal tup c.orig in
  let body = Packet.body_bytes p in
  c.last_seen <- Float.max c.last_seen ts;
  if from_orig then begin
    c.orig_pkts <- c.orig_pkts + 1;
    c.orig_bytes <- c.orig_bytes + body
  end
  else begin
    c.resp_pkts <- c.resp_pkts + 1;
    c.resp_bytes <- c.resp_bytes + body
  end;
  (* TCP state machine and history string. *)
  (match p.proto with
  | Packet.Tcp ->
    if p.flags.rst then begin
      c.tcp <- (if from_orig then Ts_reset_orig else Ts_reset_resp);
      c.history <- c.history ^ "R";
      log_conn t c ~anomalous:false
    end
    else if p.flags.fin then begin
      c.history <- c.history ^ if from_orig then "F" else "f";
      c.tcp <- Ts_closed;
      log_conn t c ~anomalous:false
    end
    else if p.flags.syn && p.flags.ack then begin
      c.history <- c.history ^ "h";
      if c.tcp = Ts_syn then c.tcp <- Ts_synack
    end
    else if p.flags.syn then begin
      if (not created) && from_orig then c.history <- c.history ^ "S"
    end
    else begin
      c.history <- c.history ^ (if from_orig then "D" else "d");
      if c.tcp = Ts_synack || c.tcp = Ts_syn then c.tcp <- Ts_est
    end
  | Packet.Udp | Packet.Icmp ->
    c.history <- c.history ^ if from_orig then "D" else "d");
  if body > 0 then c.reassembly <- reassembly_for c.orig (c.orig_bytes + c.resp_bytes);
  (* HTTP analyzer. *)
  (match p.app with
  | Packet.Http_request { method_; host; uri } ->
    c.open_http <- c.open_http @ [ (method_, host, uri) ];
    let sigs = signatures t in
    if List.exists (fun s -> contains ~sub:s uri) sigs && side_effects then
      emit_alert t ~kind:"http-exploit" ~source:(Addr.to_string p.src_ip) ~detail:uri
  | Packet.Http_response { status } -> (
    match c.open_http with
    | (m, h, u) :: rest ->
      c.open_http <- rest;
      c.http_done <- c.http_done @ [ (m, h, u, status) ];
      if side_effects then
        t.http_log_rev <-
          { he_tuple = c.orig; he_method = m; he_host = h; he_uri = u; he_status = status }
          :: t.http_log_rev
    | [] -> ())
  | Packet.Plain -> ());
  (* Scan detection (shared supporting state). *)
  if p.flags.syn && not p.flags.ack then update_scan t p.src_ip ~side_effects;
  (* Re-process events for moved / cloned state (§4.2.1). *)
  if entry.moved then
    Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
  if t.scan_cloned && p.flags.syn && not p.flags.ack then
    Mb_base.raise_event t.base (Event.Reprocess { key = Hfl.any; packet = p })

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      process t p ~side_effects:true;
      Mb_base.forward t.base p)

let receive_batch t b =
  Mb_base.process_batch t.base b ~side_effects:true ~process:(fun p ->
      process t p ~side_effects:true;
      Some p)

(* ------------------------------------------------------------------ *)
(* Southbound implementation                                           *)
(* ------------------------------------------------------------------ *)

let chunk_of_entry t (entry : conn State_table.entry) =
  Mb_base.seal_json t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
    ~key:entry.key (conn_to_json entry.value)

let get_support_perflow t hfl =
  match Hfl.compatible_with_granularity hfl (State_table.granularity t.table) with
  | false -> Error Errors.Granularity_too_fine
  | true ->
    (* Entries already flagged [moved] were exported by an earlier,
       still-pending transfer: logically they no longer live here, so a
       second export would duplicate state. *)
    let entries =
      List.filter
        (fun (e : conn State_table.entry) -> not e.moved)
        (State_table.matching t.table hfl)
    in
    List.iter (fun (e : conn State_table.entry) -> e.moved <- true) entries;
    State_table.add_move_filter t.table hfl;
    Ok (List.map (chunk_of_entry t) entries)

let put_support_perflow t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "expected per-flow supporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match conn_of_json json with
      | c ->
        State_table.insert t.table ~key:chunk.key c;
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let del_support_perflow t hfl =
  (* Moved state disappears without producing log entries — the purpose
     of the paper's [moved] flag. *)
  let removed = State_table.remove_moved_matching t.table hfl in
  State_table.remove_move_filter t.table hfl;
  Ok (List.length removed)

let get_support_shared t () =
  t.scan_cloned <- true;
  Ok
    (Some
       (Mb_base.seal_json t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
          ~key:Hfl.any (scan_to_json t.scan)))

let put_support_shared t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Shared then
    Error (Errors.Illegal_operation "expected shared supporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match scan_merge_from_json t.scan json with
      | () -> Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let stats t hfl =
  let entries = State_table.matching t.table hfl in
  let bytes =
    List.fold_left (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e)) 0 entries
  in
  {
    Southbound.empty_stats with
    perflow_support_chunks = List.length entries;
    perflow_support_bytes = bytes;
    shared_support_bytes = String.length (Json.to_string (scan_to_json t.scan));
  }

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.table)
  in
  {
    default with
    get_support_perflow = get_support_perflow t;
    put_support_perflow = put_support_perflow t;
    del_support_perflow = del_support_perflow t;
    get_support_shared = get_support_shared t;
    put_support_shared = put_support_shared t;
    stats = stats t;
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              process t p ~side_effects:false));
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let conn_log t = List.rev t.conn_log_rev
let http_log t = List.rev t.http_log_rev
let alerts t = List.rev t.alerts_rev
let open_connections t = State_table.size t.table

let finalize t =
  State_table.iter t.table (fun e ->
      if not e.moved then begin
        (* An unanswered probe (S0) or reset ends a connection
           legitimately; an established connection with no termination
           means its packets stopped arriving — the abrupt-termination
           anomaly the snapshot baseline produces. *)
        let anomalous =
          e.value.orig.proto = Packet.Tcp
          &&
          match e.value.tcp with
          | Ts_est | Ts_synack -> true
          | Ts_syn | Ts_closed | Ts_reset_orig | Ts_reset_resp -> false
        in
        log_conn t e.value ~anomalous
      end);
  State_table.clear t.table

let anomalous_entries t = t.anomalies

(* In-memory state is roughly 2.2× its serialized form (pointers, hash
   buckets, allocator slack) — used for the VM-snapshot comparison. *)
let memory_factor = 2.2

let memory_bytes t =
  let serialized =
    State_table.fold t.table ~init:0 ~f:(fun acc e ->
        acc + Chunk.size_bytes (chunk_of_entry t e))
  in
  int_of_float (float_of_int serialized *. memory_factor)

let serialized_bytes t ~key =
  List.fold_left
    (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e))
    0
    (State_table.matching t.table key)

let memory_bytes_for t ~key =
  int_of_float (float_of_int (serialized_bytes t ~key) *. memory_factor)

(* What restoring a whole-VM snapshot does: every piece of state —
   needed or not — appears at the destination, bypassing OpenMB
   entirely.  Connection records are deep-copied so the instances then
   evolve independently. *)
let snapshot_into src dst =
  State_table.iter src.table (fun e ->
      let c = e.value in
      State_table.insert dst.table ~key:e.key
        {
          orig = c.orig;
          started = c.started;
          last_seen = c.last_seen;
          tcp = c.tcp;
          history = c.history;
          orig_pkts = c.orig_pkts;
          orig_bytes = c.orig_bytes;
          resp_pkts = c.resp_pkts;
          resp_bytes = c.resp_bytes;
          open_http = c.open_http;
          http_done = c.http_done;
          reassembly = c.reassembly;
          logged = c.logged;
        });
  Hashtbl.iter
    (fun src_ip r ->
      Hashtbl.replace dst.scan src_ip { syn_count = r.syn_count; alerted = r.alerted })
    src.scan
