open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type flow_record = {
  fr_first : float;
  fr_last : float;
  fr_pkts : int;
  fr_bytes : int;
  fr_service : string;
}

type totals = {
  tot_pkts : int;
  tot_bytes : int;
  tot_tcp : int;
  tot_udp : int;
  tot_icmp : int;
  tot_new_flows : int;
}

let zero_totals =
  { tot_pkts = 0; tot_bytes = 0; tot_tcp = 0; tot_udp = 0; tot_icmp = 0; tot_new_flows = 0 }

type t = {
  base : Mb_base.t;
  table : flow_record State_table.t;
  mutable shared : totals;
  mutable shared_moved : bool;  (* shared reporting exported for merge *)
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 120.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 20.0;
    serialize_per_chunk = Time.us 250.0;
    serialize_per_byte = Time.us 0.05;
    deserialize_per_chunk = Time.us 40.0;
    deserialize_per_byte = Time.us 0.01;
  }

let create engine ?recorder ?telemetry ?(cost = default_cost) ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"prads" ~cost () in
  Config_tree.set (Mb_base.config base) [ "service"; "ports" ]
    [ Json.Int 80; Json.Int 443; Json.Int 22; Json.Int 53; Json.Int 25 ];
  {
    base;
    table = State_table.create ~granularity:Hfl.full_granularity ();
    shared = zero_totals;
    shared_moved = false;
  }

let base t = t.base

let known_service_ports t =
  match Config_tree.get (Mb_base.config t.base) [ "service"; "ports" ] with
  | [ { values; _ } ] -> List.filter_map (function Json.Int p -> Some p | _ -> None) values
  | _ -> []

let service_of_known known port =
  if not (List.mem port known) then ""
  else
    match port with
    | 80 | 8080 -> "http"
    | 443 -> "https"
    | 22 -> "ssh"
    | 53 -> "dns"
    | 25 -> "smtp"
    | _ -> "tcp-" ^ string_of_int port

(* Per-flow record update for one packet.  [known] supplies the service
   port list — the scalar path reads the config tree on demand (only
   first packets of a flow classify), the batch path hoists one read per
   batch.  Returns [(created, body_bytes)] for the caller's shared-totals
   accounting. *)
let touch t (p : Packet.t) ~known ~side_effects =
  let ts = Time.to_seconds p.ts in
  (* Word-level probe: the per-flow record resolves without building a
     tuple; one is only materialized when the flow is first seen. *)
  let entry, created =
    State_table.find_or_create_words t.table ~pa:(Five_tuple.word_a_packet p)
      ~pb:(Five_tuple.word_b_packet p)
      ~tuple:(fun () -> Five_tuple.of_packet p)
      ~default:(fun () ->
        { fr_first = ts; fr_last = ts; fr_pkts = 0; fr_bytes = 0; fr_service = "" })
  in
  let body = Packet.body_bytes p in
  let service =
    if entry.value.fr_service = "" then service_of_known (known ()) p.dst_port
    else entry.value.fr_service
  in
  let newly_detected = entry.value.fr_service = "" && service <> "" in
  entry.value <-
    {
      fr_first = entry.value.fr_first;
      fr_last = Float.max entry.value.fr_last ts;
      fr_pkts = entry.value.fr_pkts + 1;
      fr_bytes = entry.value.fr_bytes + body;
      fr_service = service;
    };
  if newly_detected && side_effects then
    Mb_base.raise_event t.base
      (Event.Introspect
         {
           code = "monitor.new_asset";
           key = entry.key;
           info = Json.Assoc [ ("service", Json.String service) ];
         });
  if entry.moved then
    Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
  (created, body)

let process t (p : Packet.t) ~side_effects =
  let created, body = touch t p ~known:(fun () -> known_service_ports t) ~side_effects in
  (* Shared reporting state is merged between instances when flows
     consolidate (§4.1.3); a re-processed packet must not also bump
     these counters or the merged totals would double-count it.  Only
     the state the event identifies — the per-flow record above — is
     replayed. *)
  if side_effects then
    t.shared <-
      {
        tot_pkts = t.shared.tot_pkts + 1;
        tot_bytes = t.shared.tot_bytes + body;
        tot_tcp = (t.shared.tot_tcp + match p.proto with Packet.Tcp -> 1 | _ -> 0);
        tot_udp = (t.shared.tot_udp + match p.proto with Packet.Udp -> 1 | _ -> 0);
        tot_icmp = (t.shared.tot_icmp + match p.proto with Packet.Icmp -> 1 | _ -> 0);
        tot_new_flows = (t.shared.tot_new_flows + if created then 1 else 0);
      }

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      process t p ~side_effects:true;
      Mb_base.forward t.base p)

(* Vectorized batch path: the service-port config read is hoisted to
   once per batch, and the shared totals record — immutable, so the
   scalar path rebuilds it per packet — is accumulated in locals and
   written back once. *)
let receive_batch t b =
  Mb_base.inject_batch t.base b ~side_effects:true ~work:(fun b ->
      let known = lazy (known_service_ports t) in
      let known () = Lazy.force known in
      let n = Packet_batch.length b in
      let pkts = ref 0
      and bytes = ref 0
      and tcp = ref 0
      and udp = ref 0
      and icmp = ref 0
      and new_flows = ref 0 in
      for i = 0 to n - 1 do
        let p = Packet_batch.get b i in
        let created, body = touch t p ~known ~side_effects:true in
        incr pkts;
        bytes := !bytes + body;
        (match p.proto with
        | Packet.Tcp -> incr tcp
        | Packet.Udp -> incr udp
        | Packet.Icmp -> incr icmp);
        if created then incr new_flows
      done;
      t.shared <-
        {
          tot_pkts = t.shared.tot_pkts + !pkts;
          tot_bytes = t.shared.tot_bytes + !bytes;
          tot_tcp = t.shared.tot_tcp + !tcp;
          tot_udp = t.shared.tot_udp + !udp;
          tot_icmp = t.shared.tot_icmp + !icmp;
          tot_new_flows = t.shared.tot_new_flows + !new_flows;
        };
      Mb_base.forward_batch t.base b)

(* ------------------------------------------------------------------ *)
(* Serialization: a single flat structure per flow, like PRADS'        *)
(* connection struct (§7 — no complex serialization needed).           *)
(* ------------------------------------------------------------------ *)

let record_to_json r =
  Json.Assoc
    [
      ("first", Json.Float r.fr_first);
      ("last", Json.Float r.fr_last);
      ("pkts", Json.Int r.fr_pkts);
      ("bytes", Json.Int r.fr_bytes);
      ("service", Json.String r.fr_service);
    ]

let record_of_json j =
  {
    fr_first = Json.get_float (Json.member "first" j);
    fr_last = Json.get_float (Json.member "last" j);
    fr_pkts = Json.get_int (Json.member "pkts" j);
    fr_bytes = Json.get_int (Json.member "bytes" j);
    fr_service = Json.get_string (Json.member "service" j);
  }

let totals_to_json s =
  Json.Assoc
    [
      ("pkts", Json.Int s.tot_pkts);
      ("bytes", Json.Int s.tot_bytes);
      ("tcp", Json.Int s.tot_tcp);
      ("udp", Json.Int s.tot_udp);
      ("icmp", Json.Int s.tot_icmp);
      ("new_flows", Json.Int s.tot_new_flows);
    ]

let totals_of_json j =
  {
    tot_pkts = Json.get_int (Json.member "pkts" j);
    tot_bytes = Json.get_int (Json.member "bytes" j);
    tot_tcp = Json.get_int (Json.member "tcp" j);
    tot_udp = Json.get_int (Json.member "udp" j);
    tot_icmp = Json.get_int (Json.member "icmp" j);
    tot_new_flows = Json.get_int (Json.member "new_flows" j);
  }

let chunk_of_entry t (entry : flow_record State_table.entry) =
  Mb_base.seal_json t.base ~role:Taxonomy.Reporting ~partition:Taxonomy.Per_flow
    ~key:entry.key
    (record_to_json entry.value)

let get_report_perflow t hfl =
  match Hfl.compatible_with_granularity hfl (State_table.granularity t.table) with
  | false -> Error Errors.Granularity_too_fine
  | true ->
    (* Skip entries an earlier pending transfer already exported. *)
    let entries =
      List.filter
        (fun (e : flow_record State_table.entry) -> not e.moved)
        (State_table.matching t.table hfl)
    in
    List.iter (fun (e : flow_record State_table.entry) -> e.moved <- true) entries;
    State_table.add_move_filter t.table hfl;
    Ok (List.map (chunk_of_entry t) entries)

let put_report_perflow t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Reporting || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "expected per-flow reporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match record_of_json json with
      | r ->
        State_table.insert t.table ~key:chunk.key r;
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let del_report_perflow t hfl =
  let removed = State_table.remove_moved_matching t.table hfl in
  State_table.remove_move_filter t.table hfl;
  Ok (List.length removed)

let get_report_shared t () =
  t.shared_moved <- true;
  Ok
    (Some
       (Mb_base.seal_json t.base ~role:Taxonomy.Reporting ~partition:Taxonomy.Shared
          ~key:Hfl.any (totals_to_json t.shared)))

(* Merging shared reporting state adds the counter values (§7: "we add
   the counter values stored in the prads_stat structure provided in
   the put call to the [local ones]"). *)
let put_report_shared t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Reporting || chunk.partition <> Taxonomy.Shared then
    Error (Errors.Illegal_operation "expected shared reporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match totals_of_json json with
      | other ->
        t.shared <-
          {
            tot_pkts = t.shared.tot_pkts + other.tot_pkts;
            tot_bytes = t.shared.tot_bytes + other.tot_bytes;
            tot_tcp = t.shared.tot_tcp + other.tot_tcp;
            tot_udp = t.shared.tot_udp + other.tot_udp;
            tot_icmp = t.shared.tot_icmp + other.tot_icmp;
            tot_new_flows = t.shared.tot_new_flows + other.tot_new_flows;
          };
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let stats t hfl =
  let entries = State_table.matching t.table hfl in
  let bytes =
    List.fold_left (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e)) 0 entries
  in
  {
    Southbound.empty_stats with
    perflow_report_chunks = List.length entries;
    perflow_report_bytes = bytes;
    shared_report_bytes = String.length (Json.to_string (totals_to_json t.shared));
  }

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.table)
  in
  {
    default with
    get_report_perflow = get_report_perflow t;
    put_report_perflow = put_report_perflow t;
    del_report_perflow = del_report_perflow t;
    get_report_shared = get_report_shared t;
    put_report_shared = put_report_shared t;
    stats = stats t;
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              process t p ~side_effects:false));
  }

let totals t = t.shared

let flow_records t =
  State_table.fold t.table ~init:[] ~f:(fun acc e -> (e.key, e.value) :: acc)

let tracked_flows t = State_table.size t.table
