(** Stateful firewall.

    Evaluates an ordered rule list (configuration state, §4.1.1's
    iptables/IOS example) on the first packet of each flow, caches the
    verdict as per-flow supporting state, and permits established
    connections' reverse traffic.  Shared reporting state counts
    allowed and denied packets and merges by addition. *)

type t

type action = Allow | Deny

type rule = { rl_match : Openmb_net.Hfl.t; rl_action : action }

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?rules:rule list ->
  ?default_action:action ->
  name:string ->
  unit ->
  t
(** [rules] default to empty; [default_action] to [Allow]. *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: verdicts evaluated per member (rule parsing
    hoisted to once per batch), denied members compacted out, survivors
    forwarded as one batch. *)

val rules : t -> rule list
(** Current ordered rule list (reflects [setConfig] updates). *)

val allowed : t -> int
val denied : t -> int

val cached_verdicts : t -> int
(** Per-flow verdict-cache population. *)

val rule_to_json : rule -> Openmb_wire.Json.t
(** The configuration-value encoding of one rule. *)
