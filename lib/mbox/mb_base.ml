open Openmb_sim
open Openmb_core

type t = {
  engine : Engine.t;
  recorder : Recorder.t option;
  name : string;
  kind : string;
  cost : Southbound.cost_model;
  config : Config_tree.t;
  mutable event_sink : Event.t -> unit;
  mutable egress : (Openmb_net.Packet.t -> unit) option;
  mutable egress_batch : (Openmb_net.Packet_batch.t -> unit) option;
  mutable op_active : bool;
  mutable dp_free_at : Time.t;
  latency : Stats.t;
  latency_during_op : Stats.t;
  mutable pkts : int;
  c_pkts : Telemetry.counter;
  h_pkt : Telemetry.histogram;
  h_occ : Telemetry.histogram;
}

let create engine ?recorder ?telemetry ~name ~kind ~cost () =
  let c_pkts, h_pkt, h_occ =
    match telemetry with
    | Some tel ->
      ( Telemetry.counter tel "mb.pkts",
        Telemetry.histogram tel "mb.pkt_latency",
        Telemetry.histogram tel "mb.batch_occupancy" )
    | None -> (Telemetry.null_counter, Telemetry.null_histogram, Telemetry.null_histogram)
  in
  {
    engine;
    recorder;
    name;
    kind;
    cost;
    config = Config_tree.create ();
    event_sink = (fun _ -> ());
    egress = None;
    egress_batch = None;
    op_active = false;
    dp_free_at = Time.zero;
    latency = Stats.create ();
    latency_during_op = Stats.create ();
    pkts = 0;
    c_pkts;
    h_pkt;
    h_occ;
  }

(* Per-MB scrape set.  The registry counters ("mb.pkts", ...) are
   shared across every MB on one telemetry instance, so per-instance
   series go through Poll sources reading this base's own fields,
   named by the MB.  The polls read simulation state but never write
   it, preserving scrape determinism. *)
let register_series t ts =
  Timeseries.add ts ~name:(t.name ^ ".pkts") ~mode:Timeseries.Sum
    (Timeseries.Poll (fun () -> float_of_int t.pkts));
  Timeseries.add ts ~name:(t.name ^ ".dp_backlog_us") ~mode:Timeseries.Max
    (Timeseries.Poll
       (fun () ->
         let b = Time.to_us Time.(t.dp_free_at - Engine.now t.engine) in
         if b > 0.0 then b else 0.0));
  Timeseries.add ts ~name:(t.name ^ ".lat_mean_us") ~mode:Timeseries.Max
    (Timeseries.Poll
       (fun () -> if Stats.count t.latency = 0 then 0.0 else Stats.mean t.latency *. 1e6))

let engine t = t.engine
let name t = t.name
let kind t = t.kind
let config t = t.config
let now t = Engine.now t.engine
let set_egress t f = t.egress <- Some f
let set_egress_batch t f = t.egress_batch <- Some f
let forward t p = match t.egress with Some f -> f p | None -> ()

(* Emit a whole batch on the egress.  Without a batch egress, drain
   through the scalar one so batch-mode middleboxes compose with
   batch-unaware downstream components. *)
let forward_batch t b =
  if Openmb_net.Packet_batch.length b = 0 then Openmb_net.Packet_batch.release b
  else
    match t.egress_batch with
    | Some f -> f b
    | None -> (
      match t.egress with
      | Some f -> Openmb_net.Packet_batch.drain b f
      | None -> Openmb_net.Packet_batch.release b)
let raise_event t ev = t.event_sink ev
let set_op_active t b = t.op_active <- b
let op_active t = t.op_active

let record t ~kind ~detail =
  match t.recorder with
  | Some r -> Recorder.record r ~actor:t.name ~kind ~detail
  | None -> ()

let inject t p ~side_effects ~work =
  let arrival = Engine.now t.engine in
  let during_op = t.op_active in
  let cost =
    if during_op then
      Time.seconds (Time.to_seconds t.cost.per_packet *. t.cost.op_slowdown)
    else t.cost.per_packet
  in
  let start = Time.max arrival t.dp_free_at in
  t.dp_free_at <- Time.(start + cost);
  Engine.call_at t.engine t.dp_free_at
    (fun () ->
      t.pkts <- t.pkts + 1;
      Telemetry.incr t.c_pkts;
      let lat = Time.to_seconds Time.(Engine.now t.engine - arrival) in
      Stats.add t.latency lat;
      Telemetry.observe t.h_pkt lat;
      if during_op then Stats.add t.latency_during_op lat;
      if side_effects then
        record t ~kind:"pkt" ~detail:(Openmb_net.Packet.flow_label p);
      work p)
    ()

(* Batch data path: the whole batch is charged [n × per-packet cost] on
   the serial data-path clock as one event, and the per-packet
   accounting (counters, latency stats, histogram) is amortized into
   single weighted updates — this is where the batch path's speedup
   comes from.  [work] receives the batch at dispatch time and takes
   ownership of it. *)
let inject_batch t b ~side_effects ~work =
  let n = Openmb_net.Packet_batch.length b in
  if n = 0 then Openmb_net.Packet_batch.release b
  else begin
    let arrival = Engine.now t.engine in
    let during_op = t.op_active in
    let per =
      if during_op then Time.to_seconds t.cost.per_packet *. t.cost.op_slowdown
      else Time.to_seconds t.cost.per_packet
    in
    let start = Time.max arrival t.dp_free_at in
    t.dp_free_at <- Time.(start + Time.seconds (per *. float_of_int n));
    Engine.call_at t.engine t.dp_free_at
      (fun () ->
        t.pkts <- t.pkts + n;
        Telemetry.add t.c_pkts n;
        let lat = Time.to_seconds Time.(Engine.now t.engine - arrival) in
        Stats.add_n t.latency lat ~n;
        Telemetry.observe_n t.h_pkt lat ~n;
        Telemetry.observe_count t.h_occ n;
        if during_op then Stats.add_n t.latency_during_op lat ~n;
        if side_effects then record t ~kind:"pktbatch" ~detail:(string_of_int n);
        work b)
      ()
  end

(* Default batch hook: loop the MB's scalar per-packet function over the
   members, compact out the drops, and forward the survivors as one
   batch.  Middleboxes with a vectorized pass call {!inject_batch}
   directly instead. *)
let process_batch t b ~side_effects ~process =
  inject_batch t b ~side_effects ~work:(fun b ->
      let n = Openmb_net.Packet_batch.length b in
      for i = 0 to n - 1 do
        let p = Openmb_net.Packet_batch.get b i in
        match process p with
        | Some p' -> if p' != p then Openmb_net.Packet_batch.set b i p'
        | None -> Openmb_net.Packet_batch.drop b i
      done;
      ignore (Openmb_net.Packet_batch.compact b : int);
      if side_effects then forward_batch t b
      else Openmb_net.Packet_batch.release b)

let latency_stats t = t.latency
let latency_during_op_stats t = t.latency_during_op
let packets_processed t = t.pkts

(* ------------------------------------------------------------------ *)
(* Chunk helpers                                                       *)
(* ------------------------------------------------------------------ *)

let seal_raw t ~role ~partition ~key plain =
  Chunk.seal ~mb_kind:t.kind ~role ~partition ~key ~plain

let unseal_raw t chunk = Chunk.unseal ~mb_kind:t.kind chunk

let seal_json t ~role ~partition ~key json =
  seal_raw t ~role ~partition ~key (Openmb_wire.Json.to_string json)

let unseal_json t chunk =
  match unseal_raw t chunk with
  | Error e -> Error e
  | Ok plain -> (
    match Openmb_wire.Json.of_string plain with
    | json -> Ok json
    | exception Openmb_wire.Json.Parse_error msg -> Error (Errors.Bad_chunk msg))

(* ------------------------------------------------------------------ *)
(* Impl assembly                                                       *)
(* ------------------------------------------------------------------ *)

let illegal what _ = Error (Errors.Illegal_operation what)

let config_get t path =
  match Config_tree.get t.config path with
  | [] ->
    if Config_tree.mem t.config path then Ok []
    else Error (Errors.Unknown_config_key (Config_tree.path_to_string path))
  | entries -> Ok entries

let config_set t path values =
  match Config_tree.set t.config path values with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error (Errors.Op_failed msg)

let config_del t path =
  if Config_tree.del t.config path then Ok ()
  else Error (Errors.Unknown_config_key (Config_tree.path_to_string path))

let default_impl t ~table_entries : Southbound.impl =
  {
    name = t.name;
    kind = t.kind;
    granularity = Openmb_net.Hfl.full_granularity;
    cost = t.cost;
    table_entries;
    get_config = config_get t;
    set_config = config_set t;
    del_config = config_del t;
    (* Reading a state class the MB does not keep yields an empty
       stream (a move touches both supporting and reporting state, and
       most MBs hold only one); importing into an absent class is an
       error. *)
    get_support_perflow = (fun _ -> Ok []);
    put_support_perflow = illegal "MB keeps no per-flow supporting state";
    del_support_perflow = (fun _ -> Ok 0);
    get_support_shared = (fun () -> Ok None);
    put_support_shared = illegal "MB keeps no shared supporting state";
    get_report_perflow = (fun _ -> Ok []);
    put_report_perflow = illegal "MB keeps no per-flow reporting state";
    del_report_perflow = (fun _ -> Ok 0);
    get_report_shared = (fun () -> Ok None);
    put_report_shared = illegal "MB keeps no shared reporting state";
    abort_perflow = (fun _ -> ());
    on_crash = (fun () -> ());
    stats = (fun _ -> Southbound.empty_stats);
    process_packet = (fun _ ~side_effects:_ -> ());
    set_event_sink = (fun sink -> t.event_sink <- sink);
    set_op_active = set_op_active t;
  }
