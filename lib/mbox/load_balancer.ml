open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type policy = Round_robin | Least_conn | Source_hash

type t = {
  base : Mb_base.t;
  policy : policy;
  table : Addr.t State_table.t;  (* flow key -> backend *)
  mutable backends : Addr.t array;
  mutable rr_next : int;
}

let lb_granularity = Hfl.[ Dim_src_ip; Dim_src_port ]

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 50.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 8.0;
    serialize_per_chunk = Time.us 80.0;
    serialize_per_byte = Time.us 0.02;
    deserialize_per_chunk = Time.us 15.0;
    deserialize_per_byte = Time.us 0.005;
  }

let policy_to_string = function
  | Round_robin -> "round_robin"
  | Least_conn -> "least_conn"
  | Source_hash -> "source_hash"

let create engine ?recorder ?telemetry ?(cost = default_cost) ?(policy = Round_robin) ~backends
    ~name () =
  if backends = [] then invalid_arg "Load_balancer.create: no backends";
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"lb" ~cost () in
  Config_tree.set (Mb_base.config base) [ "backends" ]
    (List.map (fun a -> Json.String (Addr.to_string a)) backends);
  Config_tree.set (Mb_base.config base) [ "policy" ]
    [ Json.String (policy_to_string policy) ];
  {
    base;
    policy;
    table = State_table.create ~granularity:lb_granularity ();
    backends = Array.of_list backends;
    rr_next = 0;
  }

let base t = t.base

let backend_load t =
  let counts = Hashtbl.create 8 in
  Array.iter (fun b -> Hashtbl.replace counts b 0) t.backends;
  State_table.iter t.table (fun e ->
      let c = match Hashtbl.find_opt counts e.value with Some c -> c | None -> 0 in
      Hashtbl.replace counts e.value (c + 1));
  Array.to_list (Array.map (fun b -> (b, Hashtbl.find counts b)) t.backends)

let pick_backend t (p : Packet.t) =
  match t.policy with
  | Round_robin ->
    let b = t.backends.(t.rr_next mod Array.length t.backends) in
    t.rr_next <- t.rr_next + 1;
    b
  | Least_conn ->
    let load = backend_load t in
    let best, _ =
      List.fold_left
        (fun (bb, bc) (b, c) -> if c < bc then (b, c) else (bb, bc))
        (t.backends.(0), max_int)
        load
    in
    best
  | Source_hash ->
    (* Avalanche the (src ip, src port) word with the packed-key mixer —
       no string or tuple allocation, and sequential client ports spread
       evenly across backends. *)
    let h = Five_tuple.hash_words ~pa:(Five_tuple.word_a_packet p) ~pb:0 in
    t.backends.(h mod Array.length t.backends)

let process t (p : Packet.t) ~side_effects =
  let entry, created =
    State_table.find_or_create_words t.table ~pa:(Five_tuple.word_a_packet p)
      ~pb:(Five_tuple.word_b_packet p)
      ~tuple:(fun () -> Five_tuple.of_packet p)
      ~default:(fun () -> pick_backend t p)
  in
  if created && side_effects then
    Mb_base.raise_event t.base
      (Event.Introspect
         {
           code = "lb.new_assignment";
           key = entry.key;
           info = Json.Assoc [ ("backend", Json.String (Addr.to_string entry.value)) ];
         });
  if entry.moved then
    Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
  if side_effects then Some { p with dst_ip = entry.value } else None

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      match process t p ~side_effects:true with
      | Some rewritten -> Mb_base.forward t.base rewritten
      | None -> ())

let receive_batch t b =
  Mb_base.process_batch t.base b ~side_effects:true
    ~process:(fun p -> process t p ~side_effects:true)

(* ------------------------------------------------------------------ *)
(* Southbound implementation                                           *)
(* ------------------------------------------------------------------ *)

let chunk_of_entry t (entry : Addr.t State_table.entry) =
  Mb_base.seal_json t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
    ~key:entry.key
    (Json.Assoc [ ("backend", Json.String (Addr.to_string entry.value)) ])

let get_support_perflow t hfl =
  match Hfl.compatible_with_granularity hfl (State_table.granularity t.table) with
  | false -> Error Errors.Granularity_too_fine
  | true ->
    (* Skip entries an earlier pending transfer already exported. *)
    let entries =
      List.filter
        (fun (e : Addr.t State_table.entry) -> not e.moved)
        (State_table.matching t.table hfl)
    in
    List.iter (fun (e : Addr.t State_table.entry) -> e.moved <- true) entries;
    State_table.add_move_filter t.table hfl;
    Ok (List.map (chunk_of_entry t) entries)

let put_support_perflow t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "expected per-flow supporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match Addr.of_string (Json.get_string (Json.member "backend" json)) with
      | backend ->
        State_table.insert t.table ~key:chunk.key backend;
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let del_support_perflow t hfl =
  let removed = State_table.remove_moved_matching t.table hfl in
  State_table.remove_move_filter t.table hfl;
  Ok (List.length removed)

let set_config t path values =
  let stored =
    match Config_tree.set (Mb_base.config t.base) path values with
    | () -> Ok ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg)
  in
  match (stored, path) with
  | Ok (), [ "backends" ] -> (
    match
      List.map
        (function
          | Json.String s -> Addr.of_string s
          | _ -> invalid_arg "backends must be address strings")
        values
    with
    | [] -> Error (Errors.Op_failed "backends must be non-empty")
    | backends ->
      t.backends <- Array.of_list backends;
      Ok ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg))
  | result, _ -> result

let stats t hfl =
  let entries = State_table.matching t.table hfl in
  let bytes =
    List.fold_left (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e)) 0 entries
  in
  {
    Southbound.empty_stats with
    perflow_support_chunks = List.length entries;
    perflow_support_bytes = bytes;
  }

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.table)
  in
  {
    default with
    granularity = lb_granularity;
    set_config = set_config t;
    get_support_perflow = get_support_perflow t;
    put_support_perflow = put_support_perflow t;
    del_support_perflow = del_support_perflow t;
    stats = stats t;
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              ignore (process t p ~side_effects:false)));
  }

let assignments t = State_table.fold t.table ~init:[] ~f:(fun acc e -> (e.key, e.value) :: acc)
let assignment_count t = State_table.size t.table

let set_backends t backends =
  if backends = [] then invalid_arg "Load_balancer.set_backends: no backends";
  t.backends <- Array.of_list backends;
  Config_tree.set (Mb_base.config t.base) [ "backends" ]
    (List.map (fun a -> Json.String (Addr.to_string a)) backends)
