(** Layer-4 load balancer (Balance analog).

    Assigns each client connection to a backend server and rewrites the
    destination address accordingly.  Per the paper's Balance example
    (§4.1.2), per-flow state is keyed {e only on source IP and port} —
    the destination is always the balancer itself — so requests at
    five-tuple granularity are finer than the MB's granularity and
    return an error.

    Assignments are per-flow supporting state; moving one mid-flow
    keeps the connection pinned to the same backend at the new
    instance, which is requirement R1's canonical correctness case.
    Raises ["lb.new_assignment"] introspection events. *)

type t

type policy = Round_robin | Least_conn | Source_hash

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?policy:policy ->
  backends:Openmb_net.Addr.t list ->
  name:string ->
  unit ->
  t
(** [policy] defaults to [Round_robin].  [backends] must be
    non-empty. *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: members are rewritten in place and forwarded as
    one batch. *)

val assignments : t -> (Openmb_net.Hfl.t * Openmb_net.Addr.t) list
(** (flow key, backend) pairs currently resident. *)

val assignment_count : t -> int

val backend_load : t -> (Openmb_net.Addr.t * int) list
(** Current connection count per backend. *)

val set_backends : t -> Openmb_net.Addr.t list -> unit
(** Reconfigure the backend pool (existing assignments are kept — the
    paper's R3 post-migration reconfiguration). *)
