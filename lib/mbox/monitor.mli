(** Passive traffic monitor (the repo's PRADS analog).

    Maintains a per-flow {e reporting} record (packet/byte counters,
    first/last seen, detected service) and one shared [prads_stat]
    counter block covering all traffic.  Raises
    ["monitor.new_asset"] introspection events when it identifies a
    service on a flow.

    OpenMB integration: per-flow reporting state moves between
    instances (scale up/down); shared reporting state merges by adding
    counters (§4.1.3) — never clones, to avoid double reporting.  The
    scaling evaluation's invariant is that the sum of all instances'
    outputs equals a single unscaled instance's output. *)

type t

type flow_record = {
  fr_first : float;
  fr_last : float;
  fr_pkts : int;
  fr_bytes : int;
  fr_service : string;  (** Detected service, [""] if none yet. *)
}

type totals = {
  tot_pkts : int;
  tot_bytes : int;
  tot_tcp : int;
  tot_udp : int;
  tot_icmp : int;
  tot_new_flows : int;
}
(** The shared [prads_stat] block. *)

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  name:string ->
  unit ->
  t

val default_cost : Openmb_core.Southbound.cost_model
(** PRADS-calibrated: lightweight packets, cheap flat-record
    serialization (§8.2 — chunks are a single small structure). *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: vectorized — the service-port config read is
    hoisted to once per batch and the shared totals are accumulated
    once per batch instead of per packet. *)

val totals : t -> totals
(** Current shared counters of this instance. *)

val flow_records : t -> (Openmb_net.Hfl.t * flow_record) list
(** Per-flow reporting records currently resident here. *)

val tracked_flows : t -> int
