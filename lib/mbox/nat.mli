(** Source NAT middlebox.

    Rewrites outbound packets to a public address with an allocated
    external port and reverses the translation for inbound packets.
    Mappings are per-flow supporting state keyed on the internal
    (source IP, source port, protocol) — the NAT's granularity is
    coarser than a five-tuple, exercising the paper's granularity
    rules.  The address/port mapping is the {e critical} state a
    failover must preserve; idle timers are non-critical and reset to
    defaults on import (§2's failure-recovery discussion).

    Raises ["nat.new_mapping"] introspection events carrying the new
    mapping (§4.2.2's canonical example). *)

type t

type mapping = {
  m_int_ip : Openmb_net.Addr.t;
  m_int_port : int;
  m_ext_ip : Openmb_net.Addr.t;
  m_ext_port : int;
  m_proto : Openmb_net.Packet.proto;
  m_created : float;
  m_last_active : float;  (** Non-critical; reset on failover import. *)
}

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?external_ips:Openmb_net.Addr.t list ->
  external_ip:Openmb_net.Addr.t ->
  internal_prefix:Openmb_net.Addr.prefix ->
  name:string ->
  unit ->
  t
(** [external_ips] extends the translation pool beyond [external_ip]
    (carrier-grade NAT): each address contributes ~45k external ports,
    so million-flow runs pass a pool of a few dozen addresses. *)

val default_cost : Openmb_core.Southbound.cost_model
(** NAT-calibrated per-packet and serialization costs. *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: members are translated in index order (the
    external-port cursor makes order observable) and forwarded as one
    batch; unmatched inbound packets are compacted out. *)

val mappings : t -> mapping list
val mapping_count : t -> int

val lookup_external : t -> ext_port:int -> mapping option
(** Reverse-path lookup used by inbound translation. *)

val packets_dropped : t -> int
(** Inbound packets with no matching mapping. *)
