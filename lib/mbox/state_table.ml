open Openmb_net

type 'a entry = {
  key : Hfl.t;
  id : string Lazy.t;
  mutable value : 'a;
  mutable moved : bool;
}

module Ptbl = Five_tuple.Packed_table

type 'a t = {
  granularity : Hfl.granularity;
  (* Full-granularity tables probe this packed-int hash on the packet
     path: no field list, no key string, no per-lookup allocation
     beyond the two-word packed key. *)
  packed : 'a entry Ptbl.t option;
  (* Coarse-granularity keys — and, for packed tables, the rare
     imported key that does not pin a full five-tuple — live here under
     their string form. *)
  by_key : (string, 'a entry) Hashtbl.t;
  (* Optional secondary index: source address -> entries, serving
     exact-source and host-prefix requests in O(matches) instead of a
     full scan (the paper's footnote-6 improvement). *)
  by_src : (int, (string, 'a entry) Hashtbl.t) Hashtbl.t option;
  mutable move_filters : Hfl.t list;
}

let is_full_granularity g = List.length (List.sort_uniq Stdlib.compare g) = 5

let create ?(indexed = false) ?packed ~granularity () =
  let use_packed =
    match packed with Some b -> b | None -> is_full_granularity granularity
  in
  {
    granularity;
    packed = (if use_packed then Some (Ptbl.create 64) else None);
    by_key = Hashtbl.create (if use_packed then 8 else 64);
    by_src = (if indexed then Some (Hashtbl.create 64) else None);
    move_filters = [];
  }

let mk_entry key value moved = { key; id = lazy (Hfl.to_string key); value; moved }

let src_of_key key =
  List.find_map
    (fun f ->
      match f with
      | Hfl.Src_ip p when Addr.prefix_len p = 32 -> Some (Addr.to_int (Addr.prefix_base p))
      | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
        None)
    key

let index_add t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src ->
    let bucket =
      match Hashtbl.find_opt idx src with
      | Some b -> b
      | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx src b;
        b
    in
    Hashtbl.replace bucket (Lazy.force e.id) e
  | (Some _ | None), _ -> ()

let index_remove t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src -> (
    match Hashtbl.find_opt idx src with
    | Some bucket ->
      Hashtbl.remove bucket (Lazy.force e.id);
      if Hashtbl.length bucket = 0 then Hashtbl.remove idx src
    | None -> ())
  | (Some _ | None), _ -> ()

let granularity t = t.granularity

let size t =
  Hashtbl.length t.by_key
  + match t.packed with Some p -> Ptbl.length p | None -> 0

let key_of t tup = Hfl.key_of_tuple t.granularity tup

let find t tup =
  match t.packed with
  | Some ptbl -> Ptbl.find_opt ptbl (Five_tuple.pack tup)
  | None -> Hashtbl.find_opt t.by_key (Hfl.to_string (key_of t tup))

let find_bidir t tup =
  match t.packed with
  | Some ptbl -> (
    let k = Five_tuple.pack tup in
    match Ptbl.find_opt ptbl k with
    | Some e -> Some e
    | None -> Ptbl.find_opt ptbl (Five_tuple.packed_reverse k))
  | None -> (
    match find t tup with
    | Some e -> Some e
    | None -> find t (Five_tuple.reverse tup))

(* State created while a covering move is in progress belongs to the
   destination: flag it immediately so its packets are re-processed
   there (the flow started after the export scan and its record will
   never be put — the replayed packets rebuild it at the destination
   from scratch). *)
let born_moved t key = List.exists (fun f -> Hfl.subsumes f key) t.move_filters

let find_or_create t tup ~default =
  match t.packed with
  | Some ptbl -> (
    let k = Five_tuple.pack tup in
    match Ptbl.find_opt ptbl k with
    | Some e -> (e, false)
    | None -> (
      match Ptbl.find_opt ptbl (Five_tuple.packed_reverse k) with
      | Some e -> (e, false)
      | None ->
        let key = key_of t tup in
        let e = mk_entry key (default ()) (born_moved t key) in
        Ptbl.replace ptbl k e;
        index_add t e;
        (e, true)))
  | None -> (
    match find_bidir t tup with
    | Some e -> (e, false)
    | None ->
      let key = key_of t tup in
      let e = mk_entry key (default ()) (born_moved t key) in
      Hashtbl.replace t.by_key (Hfl.to_string key) e;
      index_add t e;
      (e, true))

let insert_string t ~key value =
  let id = Hfl.to_string key in
  (match Hashtbl.find_opt t.by_key id with
  | Some old -> index_remove t old
  | None -> ());
  let e = mk_entry key value false in
  Hashtbl.replace t.by_key id e;
  index_add t e

let insert t ~key value =
  match t.packed with
  | Some ptbl -> (
    match Hfl.to_tuple key with
    | Some tup ->
      let k = Five_tuple.pack tup in
      (match Ptbl.find_opt ptbl k with
      | Some old -> index_remove t old
      | None -> ());
      let e = mk_entry key value false in
      Ptbl.replace ptbl k e;
      index_add t e
    | None -> insert_string t ~key value)
  | None -> insert_string t ~key value

(* A request pinning the source to a single host can be served from the
   index; anything else falls back to the linear scan the paper's
   prototype performs. *)
let indexed_candidates t hfl =
  match t.by_src with
  | None -> None
  | Some idx ->
    List.find_map
      (fun f ->
        match f with
        | Hfl.Src_ip p when Addr.prefix_len p = 32 -> (
          match Hashtbl.find_opt idx (Addr.to_int (Addr.prefix_base p)) with
          | Some bucket -> Some (Hashtbl.fold (fun _ e acc -> e :: acc) bucket [])
          | None -> Some [])
        | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
          None)
      hfl

let fold_entries t ~init ~f =
  let acc =
    match t.packed with
    | Some ptbl -> Ptbl.fold (fun _ e acc -> f acc e) ptbl init
    | None -> init
  in
  Hashtbl.fold (fun _ e acc -> f acc e) t.by_key acc

let matching t hfl =
  match indexed_candidates t hfl with
  | Some candidates -> List.filter (fun e -> Hfl.subsumes hfl e.key) candidates
  | None ->
    fold_entries t ~init:[] ~f:(fun acc e -> if Hfl.subsumes hfl e.key then e :: acc else acc)

(* Visit matching entries without materializing the hit list — the
   bulk-export path (a get streaming thousands of chunks) folds each
   entry straight into its batch instead of building and re-walking
   intermediate lists. *)
let iter_matching t hfl f =
  match indexed_candidates t hfl with
  | Some candidates -> List.iter (fun e -> if Hfl.subsumes hfl e.key then f e) candidates
  | None ->
    fold_entries t ~init:() ~f:(fun () e -> if Hfl.subsumes hfl e.key then f e)

let remove_entry t (e : 'a entry) =
  (match t.packed with
  | Some ptbl -> (
    match Hfl.to_tuple e.key with
    | Some tup -> Ptbl.remove ptbl (Five_tuple.pack tup)
    | None -> Hashtbl.remove t.by_key (Lazy.force e.id))
  | None -> Hashtbl.remove t.by_key (Lazy.force e.id));
  index_remove t e

let remove_matching t hfl =
  let hits = matching t hfl in
  List.iter (remove_entry t) hits;
  hits

(* The deferred delete that completes a move (Fig. 5) must only remove
   state that is still the exported copy: an entry whose [moved] flag
   was cleared by a later import belongs to a newer transfer and must
   survive — otherwise a move back to this instance races the delete
   and loses state. *)
let remove_moved_matching t hfl =
  let hits = List.filter (fun e -> e.moved) (matching t hfl) in
  List.iter (remove_entry t) hits;
  hits

let remove_key t key =
  match t.packed with
  | Some ptbl -> (
    match Hfl.to_tuple key with
    | Some tup -> (
      let k = Five_tuple.pack tup in
      match Ptbl.find_opt ptbl k with
      | Some e ->
        Ptbl.remove ptbl k;
        index_remove t e;
        true
      | None -> false)
    | None -> (
      let id = Hfl.to_string key in
      match Hashtbl.find_opt t.by_key id with
      | Some e ->
        Hashtbl.remove t.by_key id;
        index_remove t e;
        true
      | None -> false))
  | None -> (
    let id = Hfl.to_string key in
    match Hashtbl.find_opt t.by_key id with
    | Some e ->
      Hashtbl.remove t.by_key id;
      index_remove t e;
      true
    | None -> false)

let add_move_filter t hfl = t.move_filters <- hfl :: t.move_filters

let remove_move_filter t hfl =
  t.move_filters <- List.filter (fun f -> not (Hfl.equal f hfl)) t.move_filters

let iter t f = fold_entries t ~init:() ~f:(fun () e -> f e)
let fold t ~init ~f = fold_entries t ~init ~f

let clear t =
  (match t.packed with Some ptbl -> Ptbl.reset ptbl | None -> ());
  Hashtbl.reset t.by_key;
  match t.by_src with Some idx -> Hashtbl.reset idx | None -> ()
