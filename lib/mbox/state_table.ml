open Openmb_net

type 'a entry = {
  key : Hfl.t;
  id : string Lazy.t;
  mutable value : 'a;
  mutable moved : bool;
}

type 'a t = {
  granularity : Hfl.granularity;
  (* Tables probe this flat open-addressing table on the packet path:
     no field list, no key string, no per-lookup allocation — the probe
     key is the tuple's two packed words and their precomputed hash
     ({!Openmb_net.Flat_table}).  Coarse granularities participate
     through masked words (below): the bits of absent dimensions are
     cleared, so every tuple with the same granularity projection
     probes the same slot. *)
  packed : 'a entry Flat_table.t option;
  (* Dimension-presence bits (see [dim_bit]) and the corresponding
     bit masks over the two packed words; at full granularity both
     word masks are all-ones, so masking is branch-free either way. *)
  kbits : int;
  pa_mask : int;
  pb_mask : int;
  (* Keys the masked packed index cannot represent — imported keys
     whose shape differs from the table's granularity (wildcard
     prefixes, extra/missing dims) — live here under their string
     form, as does everything when [packed] is [None]. *)
  by_key : (string, 'a entry) Hashtbl.t;
  (* Optional secondary index: source address -> entries, serving
     exact-source and host-prefix requests in O(matches) instead of a
     full scan (the paper's footnote-6 improvement). *)
  by_src : (int, (string, 'a entry) Hashtbl.t) Hashtbl.t option;
  mutable move_filters : Hfl.t list;
}

let dim_bit = function
  | Hfl.Dim_src_ip -> 1
  | Hfl.Dim_dst_ip -> 2
  | Hfl.Dim_src_port -> 4
  | Hfl.Dim_dst_port -> 8
  | Hfl.Dim_proto -> 16

let kbits_of g = List.fold_left (fun m d -> m lor dim_bit d) 0 g

(* Word layout (Five_tuple): pa = src_ip:32 | src_port:16,
   pb = dst_ip:32 | dst_port:16 | proto:2. *)
let pa_mask_of bits =
  (if bits land 1 <> 0 then -1 lsl 16 else 0)
  lor if bits land 4 <> 0 then 0xFFFF else 0

let pb_mask_of bits =
  (if bits land 2 <> 0 then -1 lsl 18 else 0)
  lor (if bits land 8 <> 0 then 0xFFFF lsl 2 else 0)
  lor if bits land 16 <> 0 then 3 else 0

(* Packed words of the reverse-direction tuple, from the forward words:
   swap the ip:port halves and carry the proto bits across. *)
let[@inline] rev_pa ~pb = ((pb lsr 18) lsl 16) lor ((pb lsr 2) land 0xFFFF)
let[@inline] rev_pb ~pa ~pb = ((pa lsr 16) lsl 18) lor ((pa land 0xFFFF) lsl 2) lor (pb land 3)

let create ?(indexed = false) ?packed ~granularity () =
  let use_packed = match packed with Some b -> b | None -> true in
  let kbits = kbits_of granularity in
  {
    granularity;
    packed = (if use_packed then Some (Flat_table.create ~capacity:64 ()) else None);
    kbits;
    pa_mask = pa_mask_of kbits;
    pb_mask = pb_mask_of kbits;
    by_key = Hashtbl.create (if use_packed then 8 else 64);
    by_src = (if indexed then Some (Hashtbl.create 64) else None);
    move_filters = [];
  }

let mk_entry key value moved = { key; id = lazy (Hfl.to_string key); value; moved }

let src_of_key key =
  List.find_map
    (fun f ->
      match f with
      | Hfl.Src_ip p when Addr.prefix_len p = 32 -> Some (Addr.to_int (Addr.prefix_base p))
      | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
        None)
    key

(* Both guards match on [by_src] first: the unindexed default must not
   pay [src_of_key]'s scan (and its closure) on every insert. *)
let index_add t (e : 'a entry) =
  match t.by_src with
  | None -> ()
  | Some idx -> (
    match src_of_key e.key with
    | None -> ()
    | Some src ->
      let bucket =
        match Hashtbl.find_opt idx src with
        | Some b -> b
        | None ->
          let b = Hashtbl.create 4 in
          Hashtbl.replace idx src b;
          b
      in
      Hashtbl.replace bucket (Lazy.force e.id) e)

let index_remove t (e : 'a entry) =
  match t.by_src with
  | None -> ()
  | Some idx -> (
    match src_of_key e.key with
    | None -> ()
    | Some src -> (
      match Hashtbl.find_opt idx src with
      | Some bucket ->
        Hashtbl.remove bucket (Lazy.force e.id);
        if Hashtbl.length bucket = 0 then Hashtbl.remove idx src
      | None -> ()))

let granularity t = t.granularity

let size t =
  Hashtbl.length t.by_key
  + match t.packed with Some p -> Flat_table.length p | None -> 0

let key_of t tup = Hfl.key_of_tuple t.granularity tup

(* Masked packed form of a stored key, when the key has exactly the
   table's granularity shape (one exact field per dimension).  Keys
   that do not — wildcard prefixes, imports from an MB with a different
   granularity — return [None] and stay string-keyed.  The walk is a
   top-level function (an inner [let rec] would heap a closure per
   call) and builds the words from loose fields without an
   intermediate tuple record: imports stream through here once per
   chunk during a move, so the only allocation left is the result. *)
let rec masked_walk kbits pa_mask pb_mask bits src sp dst dp proto = function
  | [] ->
    if bits = kbits then
      Some
        ( Five_tuple.word_a_of ~src_ip:src ~src_port:sp land pa_mask,
          Five_tuple.word_b_of ~dst_ip:dst ~dst_port:dp ~proto land pb_mask )
    else None
  | f :: rest -> (
    match f with
    | Hfl.Src_ip p when Addr.prefix_len p = 32 ->
      masked_walk kbits pa_mask pb_mask (bits lor 1) (Addr.prefix_base p) sp dst dp
        proto rest
    | Hfl.Dst_ip p when Addr.prefix_len p = 32 ->
      masked_walk kbits pa_mask pb_mask (bits lor 2) src sp (Addr.prefix_base p) dp
        proto rest
    | Hfl.Src_port v ->
      masked_walk kbits pa_mask pb_mask (bits lor 4) src v dst dp proto rest
    | Hfl.Dst_port v ->
      masked_walk kbits pa_mask pb_mask (bits lor 8) src sp dst v proto rest
    | Hfl.Proto pr ->
      masked_walk kbits pa_mask pb_mask (bits lor 16) src sp dst dp pr rest
    | Hfl.Src_ip _ | Hfl.Dst_ip _ -> None)

let masked_of_key t key =
  masked_walk t.kbits t.pa_mask t.pb_mask 0 (Addr.of_int 0) 0 (Addr.of_int 0) 0
    Packet.Tcp key

let find t tup =
  match t.packed with
  | Some ftbl ->
    let pa = Five_tuple.word_a tup land t.pa_mask
    and pb = Five_tuple.word_b tup land t.pb_mask in
    Flat_table.find ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb)
  | None -> Hashtbl.find_opt t.by_key (Hfl.to_string (key_of t tup))

let find_bidir t tup =
  match t.packed with
  | Some ftbl -> (
    let wa = Five_tuple.word_a tup and wb = Five_tuple.word_b tup in
    let pa = wa land t.pa_mask and pb = wb land t.pb_mask in
    match Flat_table.find ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb) with
    | Some _ as hit -> hit
    | None ->
      let rpa = rev_pa ~pb:wb land t.pa_mask
      and rpb = rev_pb ~pa:wa ~pb:wb land t.pb_mask in
      Flat_table.find ftbl ~pa:rpa ~pb:rpb ~h:(Five_tuple.hash_words ~pa:rpa ~pb:rpb))
  | None -> (
    match find t tup with
    | Some e -> Some e
    | None -> find t (Five_tuple.reverse tup))

(* State created while a covering move is in progress belongs to the
   destination: flag it immediately so its packets are re-processed
   there (the flow started after the export scan and its record will
   never be put — the replayed packets rebuild it at the destination
   from scratch). *)
let born_moved t key = List.exists (fun f -> Hfl.subsumes f key) t.move_filters

(* Word-level find-or-create: the batch paths probe with the key
   columns a [Packet_batch] already carries and only materialize the
   tuple (and its Hfl key) on a miss. *)
let find_or_create_words t ~pa:wa ~pb:wb ~tuple ~default =
  match t.packed with
  | Some ftbl -> (
    let pa = wa land t.pa_mask and pb = wb land t.pb_mask in
    match Flat_table.find ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb) with
    | Some e -> (e, false)
    | None -> (
      let rpa = rev_pa ~pb:wb land t.pa_mask
      and rpb = rev_pb ~pa:wa ~pb:wb land t.pb_mask in
      match Flat_table.find ftbl ~pa:rpa ~pb:rpb ~h:(Five_tuple.hash_words ~pa:rpa ~pb:rpb) with
      | Some e -> (e, false)
      | None ->
        let key = key_of t (tuple ()) in
        let e = mk_entry key (default ()) (born_moved t key) in
        Flat_table.replace ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb) e;
        index_add t e;
        (e, true)))
  | None -> (
    let tup = tuple () in
    match find_bidir t tup with
    | Some e -> (e, false)
    | None ->
      let key = key_of t tup in
      let e = mk_entry key (default ()) (born_moved t key) in
      Hashtbl.replace t.by_key (Hfl.to_string key) e;
      index_add t e;
      (e, true))

let find_or_create t tup ~default =
  find_or_create_words t ~pa:(Five_tuple.word_a tup) ~pb:(Five_tuple.word_b tup)
    ~tuple:(fun () -> tup) ~default

let insert_string t ~key value =
  let id = Hfl.to_string key in
  (match Hashtbl.find_opt t.by_key id with
  | Some old -> index_remove t old
  | None -> ());
  let e = mk_entry key value false in
  Hashtbl.replace t.by_key id e;
  index_add t e

let insert t ~key value =
  match t.packed with
  | Some ftbl -> (
    match masked_of_key t key with
    | Some (pa, pb) ->
      let h = Five_tuple.hash_words ~pa ~pb in
      (match Flat_table.find ftbl ~pa ~pb ~h with
      | Some old -> index_remove t old
      | None -> ());
      let e = mk_entry key value false in
      Flat_table.replace ftbl ~pa ~pb ~h e;
      index_add t e
    | None -> insert_string t ~key value)
  | None -> insert_string t ~key value

(* Exact lookup under a stored key: the masked flat probe when the key
   has the table's shape, the string fallback otherwise.  This is what
   lets NAT resolve an inbound mapping in O(1) instead of scanning
   ({!matching}) per packet. *)
let find_key t key =
  let string_find () = Hashtbl.find_opt t.by_key (Hfl.to_string key) in
  match t.packed with
  | Some ftbl -> (
    match masked_of_key t key with
    | Some (pa, pb) -> Flat_table.find ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb)
    | None -> string_find ())
  | None -> string_find ()

(* A request pinning the source to a single host can be served from the
   index; anything else falls back to the linear scan the paper's
   prototype performs. *)
let indexed_candidates t hfl =
  match t.by_src with
  | None -> None
  | Some idx ->
    List.find_map
      (fun f ->
        match f with
        | Hfl.Src_ip p when Addr.prefix_len p = 32 -> (
          match Hashtbl.find_opt idx (Addr.to_int (Addr.prefix_base p)) with
          | Some bucket -> Some (Hashtbl.fold (fun _ e acc -> e :: acc) bucket [])
          | None -> Some [])
        | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
          None)
      hfl

let fold_entries t ~init ~f =
  let acc =
    match t.packed with
    | Some ftbl -> Flat_table.fold ftbl ~init ~f
    | None -> init
  in
  Hashtbl.fold (fun _ e acc -> f acc e) t.by_key acc

let matching t hfl =
  match indexed_candidates t hfl with
  | Some candidates -> List.filter (fun e -> Hfl.subsumes hfl e.key) candidates
  | None ->
    fold_entries t ~init:[] ~f:(fun acc e -> if Hfl.subsumes hfl e.key then e :: acc else acc)

(* Visit matching entries without materializing the hit list — the
   bulk-export path (a get streaming thousands of chunks) folds each
   entry straight into its batch instead of building and re-walking
   intermediate lists. *)
let iter_matching t hfl f =
  match indexed_candidates t hfl with
  | Some candidates -> List.iter (fun e -> if Hfl.subsumes hfl e.key then f e) candidates
  | None ->
    fold_entries t ~init:() ~f:(fun () e -> if Hfl.subsumes hfl e.key then f e)

let remove_entry t (e : 'a entry) =
  (match t.packed with
  | Some ftbl -> (
    match masked_of_key t e.key with
    | Some (pa, pb) ->
      ignore (Flat_table.remove ftbl ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb) : bool)
    | None -> Hashtbl.remove t.by_key (Lazy.force e.id))
  | None -> Hashtbl.remove t.by_key (Lazy.force e.id));
  index_remove t e

let remove_matching t hfl =
  let hits = matching t hfl in
  List.iter (remove_entry t) hits;
  hits

(* The deferred delete that completes a move (Fig. 5) must only remove
   state that is still the exported copy: an entry whose [moved] flag
   was cleared by a later import belongs to a newer transfer and must
   survive — otherwise a move back to this instance races the delete
   and loses state. *)
let remove_moved_matching t hfl =
  let hits = List.filter (fun e -> e.moved) (matching t hfl) in
  List.iter (remove_entry t) hits;
  hits

let remove_key t key =
  let string_remove () =
    let id = Hfl.to_string key in
    match Hashtbl.find_opt t.by_key id with
    | Some e ->
      Hashtbl.remove t.by_key id;
      index_remove t e;
      true
    | None -> false
  in
  match t.packed with
  | Some ftbl -> (
    match masked_of_key t key with
    | Some (pa, pb) -> (
      let h = Five_tuple.hash_words ~pa ~pb in
      match Flat_table.find ftbl ~pa ~pb ~h with
      | Some e ->
        ignore (Flat_table.remove ftbl ~pa ~pb ~h : bool);
        index_remove t e;
        true
      | None -> false)
    | None -> string_remove ())
  | None -> string_remove ()

let add_move_filter t hfl = t.move_filters <- hfl :: t.move_filters

let remove_move_filter t hfl =
  t.move_filters <- List.filter (fun f -> not (Hfl.equal f hfl)) t.move_filters

let iter t f = fold_entries t ~init:() ~f:(fun () e -> f e)
let fold t ~init ~f = fold_entries t ~init ~f

let clear t =
  (match t.packed with Some ftbl -> Flat_table.clear ftbl | None -> ());
  Hashtbl.reset t.by_key;
  match t.by_src with Some idx -> Hashtbl.reset idx | None -> ()
