open Openmb_net

type 'a entry = {
  key : Hfl.t;
  id : string Lazy.t;
  mutable value : 'a;
  mutable moved : bool;
}

module Ptbl = Five_tuple.Packed_table

type 'a t = {
  granularity : Hfl.granularity;
  (* Tables probe this packed-int hash on the packet path: no field
     list, no key string, no per-lookup allocation beyond the two-word
     packed key.  Coarse granularities participate through masked
     words (below): the bits of absent dimensions are cleared, so
     every tuple with the same granularity projection probes the same
     slot. *)
  packed : 'a entry Ptbl.t option;
  (* Dimension-presence bits (see [dim_bit]) and the corresponding
     bit masks over the two packed words; [kbits = full_kbits] means
     the identity mask. *)
  kbits : int;
  pa_mask : int;
  pb_mask : int;
  (* Keys the masked packed index cannot represent — imported keys
     whose shape differs from the table's granularity (wildcard
     prefixes, extra/missing dims) — live here under their string
     form, as does everything when [packed] is [None]. *)
  by_key : (string, 'a entry) Hashtbl.t;
  (* Optional secondary index: source address -> entries, serving
     exact-source and host-prefix requests in O(matches) instead of a
     full scan (the paper's footnote-6 improvement). *)
  by_src : (int, (string, 'a entry) Hashtbl.t) Hashtbl.t option;
  mutable move_filters : Hfl.t list;
}

let dim_bit = function
  | Hfl.Dim_src_ip -> 1
  | Hfl.Dim_dst_ip -> 2
  | Hfl.Dim_src_port -> 4
  | Hfl.Dim_dst_port -> 8
  | Hfl.Dim_proto -> 16

let full_kbits = 31
let kbits_of g = List.fold_left (fun m d -> m lor dim_bit d) 0 g

(* Word layout (Five_tuple): pa = src_ip:32 | src_port:16,
   pb = dst_ip:32 | dst_port:16 | proto:2. *)
let pa_mask_of bits =
  (if bits land 1 <> 0 then -1 lsl 16 else 0)
  lor if bits land 4 <> 0 then 0xFFFF else 0

let pb_mask_of bits =
  (if bits land 2 <> 0 then -1 lsl 18 else 0)
  lor (if bits land 8 <> 0 then 0xFFFF lsl 2 else 0)
  lor if bits land 16 <> 0 then 3 else 0

let create ?(indexed = false) ?packed ~granularity () =
  let use_packed = match packed with Some b -> b | None -> true in
  let kbits = kbits_of granularity in
  {
    granularity;
    packed = (if use_packed then Some (Ptbl.create 64) else None);
    kbits;
    pa_mask = pa_mask_of kbits;
    pb_mask = pb_mask_of kbits;
    by_key = Hashtbl.create (if use_packed then 8 else 64);
    by_src = (if indexed then Some (Hashtbl.create 64) else None);
    move_filters = [];
  }

let mk_entry key value moved = { key; id = lazy (Hfl.to_string key); value; moved }

let src_of_key key =
  List.find_map
    (fun f ->
      match f with
      | Hfl.Src_ip p when Addr.prefix_len p = 32 -> Some (Addr.to_int (Addr.prefix_base p))
      | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
        None)
    key

let index_add t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src ->
    let bucket =
      match Hashtbl.find_opt idx src with
      | Some b -> b
      | None ->
        let b = Hashtbl.create 4 in
        Hashtbl.replace idx src b;
        b
    in
    Hashtbl.replace bucket (Lazy.force e.id) e
  | (Some _ | None), _ -> ()

let index_remove t (e : 'a entry) =
  match (t.by_src, src_of_key e.key) with
  | Some idx, Some src -> (
    match Hashtbl.find_opt idx src with
    | Some bucket ->
      Hashtbl.remove bucket (Lazy.force e.id);
      if Hashtbl.length bucket = 0 then Hashtbl.remove idx src
    | None -> ())
  | (Some _ | None), _ -> ()

let granularity t = t.granularity

let size t =
  Hashtbl.length t.by_key
  + match t.packed with Some p -> Ptbl.length p | None -> 0

let key_of t tup = Hfl.key_of_tuple t.granularity tup

(* Project a packed key onto the table's granularity: clear the bits of
   every absent dimension.  Two tuples equal under [key_of] mask to the
   same words, so the masked key is a faithful allocation-light stand-in
   for the Hfl key string. *)
let mask_packed t k =
  if t.kbits = full_kbits then k
  else
    Five_tuple.pack_words
      ~pa:(Five_tuple.packed_pa k land t.pa_mask)
      ~pb:(Five_tuple.packed_pb k land t.pb_mask)

(* Masked packed form of a stored key, when the key has exactly the
   table's granularity shape (one exact field per dimension).  Keys
   that do not — wildcard prefixes, imports from an MB with a different
   granularity — return [None] and stay string-keyed. *)
let masked_of_key t key =
  let zero = Addr.of_int 0 in
  let rec go bits src sp dst dp proto = function
    | [] ->
      if bits = t.kbits then
        Some
          (mask_packed t
             (Five_tuple.pack
                { Five_tuple.src_ip = src; dst_ip = dst; src_port = sp;
                  dst_port = dp; proto }))
      else None
    | f :: rest -> (
      match f with
      | Hfl.Src_ip p when Addr.prefix_len p = 32 ->
        go (bits lor 1) (Addr.prefix_base p) sp dst dp proto rest
      | Hfl.Dst_ip p when Addr.prefix_len p = 32 ->
        go (bits lor 2) src sp (Addr.prefix_base p) dp proto rest
      | Hfl.Src_port v -> go (bits lor 4) src v dst dp proto rest
      | Hfl.Dst_port v -> go (bits lor 8) src sp dst v proto rest
      | Hfl.Proto pr -> go (bits lor 16) src sp dst dp pr rest
      | Hfl.Src_ip _ | Hfl.Dst_ip _ -> None)
  in
  go 0 zero 0 zero 0 Packet.Tcp key

let find t tup =
  match t.packed with
  | Some ptbl -> Ptbl.find_opt ptbl (mask_packed t (Five_tuple.pack tup))
  | None -> Hashtbl.find_opt t.by_key (Hfl.to_string (key_of t tup))

let find_bidir t tup =
  match t.packed with
  | Some ptbl -> (
    let k = Five_tuple.pack tup in
    match Ptbl.find_opt ptbl (mask_packed t k) with
    | Some e -> Some e
    | None -> Ptbl.find_opt ptbl (mask_packed t (Five_tuple.packed_reverse k)))
  | None -> (
    match find t tup with
    | Some e -> Some e
    | None -> find t (Five_tuple.reverse tup))

(* State created while a covering move is in progress belongs to the
   destination: flag it immediately so its packets are re-processed
   there (the flow started after the export scan and its record will
   never be put — the replayed packets rebuild it at the destination
   from scratch). *)
let born_moved t key = List.exists (fun f -> Hfl.subsumes f key) t.move_filters

let find_or_create t tup ~default =
  match t.packed with
  | Some ptbl -> (
    let k = mask_packed t (Five_tuple.pack tup) in
    match Ptbl.find_opt ptbl k with
    | Some e -> (e, false)
    | None -> (
      match
        Ptbl.find_opt ptbl (mask_packed t (Five_tuple.pack (Five_tuple.reverse tup)))
      with
      | Some e -> (e, false)
      | None ->
        let key = key_of t tup in
        let e = mk_entry key (default ()) (born_moved t key) in
        Ptbl.replace ptbl k e;
        index_add t e;
        (e, true)))
  | None -> (
    match find_bidir t tup with
    | Some e -> (e, false)
    | None ->
      let key = key_of t tup in
      let e = mk_entry key (default ()) (born_moved t key) in
      Hashtbl.replace t.by_key (Hfl.to_string key) e;
      index_add t e;
      (e, true))

let insert_string t ~key value =
  let id = Hfl.to_string key in
  (match Hashtbl.find_opt t.by_key id with
  | Some old -> index_remove t old
  | None -> ());
  let e = mk_entry key value false in
  Hashtbl.replace t.by_key id e;
  index_add t e

let insert t ~key value =
  match t.packed with
  | Some ptbl -> (
    match masked_of_key t key with
    | Some k ->
      (match Ptbl.find_opt ptbl k with
      | Some old -> index_remove t old
      | None -> ());
      let e = mk_entry key value false in
      Ptbl.replace ptbl k e;
      index_add t e
    | None -> insert_string t ~key value)
  | None -> insert_string t ~key value

(* A request pinning the source to a single host can be served from the
   index; anything else falls back to the linear scan the paper's
   prototype performs. *)
let indexed_candidates t hfl =
  match t.by_src with
  | None -> None
  | Some idx ->
    List.find_map
      (fun f ->
        match f with
        | Hfl.Src_ip p when Addr.prefix_len p = 32 -> (
          match Hashtbl.find_opt idx (Addr.to_int (Addr.prefix_base p)) with
          | Some bucket -> Some (Hashtbl.fold (fun _ e acc -> e :: acc) bucket [])
          | None -> Some [])
        | Hfl.Src_ip _ | Hfl.Dst_ip _ | Hfl.Src_port _ | Hfl.Dst_port _ | Hfl.Proto _ ->
          None)
      hfl

let fold_entries t ~init ~f =
  let acc =
    match t.packed with
    | Some ptbl -> Ptbl.fold (fun _ e acc -> f acc e) ptbl init
    | None -> init
  in
  Hashtbl.fold (fun _ e acc -> f acc e) t.by_key acc

let matching t hfl =
  match indexed_candidates t hfl with
  | Some candidates -> List.filter (fun e -> Hfl.subsumes hfl e.key) candidates
  | None ->
    fold_entries t ~init:[] ~f:(fun acc e -> if Hfl.subsumes hfl e.key then e :: acc else acc)

(* Visit matching entries without materializing the hit list — the
   bulk-export path (a get streaming thousands of chunks) folds each
   entry straight into its batch instead of building and re-walking
   intermediate lists. *)
let iter_matching t hfl f =
  match indexed_candidates t hfl with
  | Some candidates -> List.iter (fun e -> if Hfl.subsumes hfl e.key then f e) candidates
  | None ->
    fold_entries t ~init:() ~f:(fun () e -> if Hfl.subsumes hfl e.key then f e)

let remove_entry t (e : 'a entry) =
  (match t.packed with
  | Some ptbl -> (
    match masked_of_key t e.key with
    | Some k -> Ptbl.remove ptbl k
    | None -> Hashtbl.remove t.by_key (Lazy.force e.id))
  | None -> Hashtbl.remove t.by_key (Lazy.force e.id));
  index_remove t e

let remove_matching t hfl =
  let hits = matching t hfl in
  List.iter (remove_entry t) hits;
  hits

(* The deferred delete that completes a move (Fig. 5) must only remove
   state that is still the exported copy: an entry whose [moved] flag
   was cleared by a later import belongs to a newer transfer and must
   survive — otherwise a move back to this instance races the delete
   and loses state. *)
let remove_moved_matching t hfl =
  let hits = List.filter (fun e -> e.moved) (matching t hfl) in
  List.iter (remove_entry t) hits;
  hits

let remove_key t key =
  match t.packed with
  | Some ptbl -> (
    match masked_of_key t key with
    | Some k -> (
      match Ptbl.find_opt ptbl k with
      | Some e ->
        Ptbl.remove ptbl k;
        index_remove t e;
        true
      | None -> false)
    | None -> (
      let id = Hfl.to_string key in
      match Hashtbl.find_opt t.by_key id with
      | Some e ->
        Hashtbl.remove t.by_key id;
        index_remove t e;
        true
      | None -> false))
  | None -> (
    let id = Hfl.to_string key in
    match Hashtbl.find_opt t.by_key id with
    | Some e ->
      Hashtbl.remove t.by_key id;
      index_remove t e;
      true
    | None -> false)

let add_move_filter t hfl = t.move_filters <- hfl :: t.move_filters

let remove_move_filter t hfl =
  t.move_filters <- List.filter (fun f -> not (Hfl.equal f hfl)) t.move_filters

let iter t f = fold_entries t ~init:() ~f:(fun () e -> f e)
let fold t ~init ~f = fold_entries t ~init ~f

let clear t =
  (match t.packed with Some ptbl -> Ptbl.reset ptbl | None -> ());
  Hashtbl.reset t.by_key;
  match t.by_src with Some idx -> Hashtbl.reset idx | None -> ()
