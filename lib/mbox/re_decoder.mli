(** Redundancy-elimination decoder (SmartRE analog).

    Reconstructs encoded packets from its packet cache and appends the
    reconstructed payload so the cache tracks the encoder's.  In
    {e explicit} mode reconstruction is placed at the absolute offset
    stamped on the packet; in {e implicit} (classic) mode it is
    appended at the decoder's own head, so a single missed packet
    permanently desynchronizes the caches — the failure Table 3's
    baseline exhibits.

    OpenMB integration: the cache is shared supporting state.
    [getSupportShared] exports it (and marks it cloned, so each
    subsequent cache update raises a re-process event);
    [putSupportShared] installs a received cache.  Setting the
    ["SyncEvents"] config key to [false] stops the post-clone event
    stream once the control application has finished the migration. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  ?capacity_tokens:int ->
  ?mode:Re_encoder.mode ->
  ?cache_id:int ->
  name:string ->
  unit ->
  t
(** [cache_id] (default 0) must match the encoder-side cache index this
    decoder serves. *)

val default_cost : Openmb_core.Southbound.cost_model

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: undecodable members are compacted out. *)

val cache : t -> Re_cache.t

val cache_id : t -> int

val set_cache_id : t -> int -> unit
(** Point this decoder at a different encoder-side cache index. *)

val decoded_bytes : t -> int
(** Shim-expanded bytes successfully reconstructed. *)

val undecodable_bytes : t -> int
(** Shim-expanded bytes that could not be correctly reconstructed
    (missing or stale cache contents, or wrong cache id). *)

val packets_decoded : t -> int
val packets_failed : t -> int
