(** Common middlebox runtime.

    Every middlebox in this repo is built on this base: it provides the
    simulated packet data path (serial processing with queueing, the
    op-slowdown penalty, per-packet latency measurement), event
    emission honouring the moved/cloned flags, a configuration tree,
    and helpers for assembling a {!Openmb_core.Southbound.impl}. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  name:string ->
  kind:string ->
  cost:Openmb_core.Southbound.cost_model ->
  unit ->
  t
(** With [telemetry], every processed packet increments the shared
    ["mb.pkts"] counter and feeds its data-path latency (including
    queueing) into the ["mb.pkt_latency"] histogram. *)

val engine : t -> Openmb_sim.Engine.t
val name : t -> string
val kind : t -> string
val config : t -> Openmb_core.Config_tree.t
val now : t -> Openmb_sim.Time.t

val set_egress : t -> (Openmb_net.Packet.t -> unit) -> unit
(** Where processed packets are forwarded (the MB's egress link). *)

val set_egress_batch : t -> (Openmb_net.Packet_batch.t -> unit) -> unit
(** Where processed batches are forwarded.  Without one, batch
    forwarding drains through the scalar egress. *)

val forward : t -> Openmb_net.Packet.t -> unit
(** Emit a packet on the egress (drops silently when none is set —
    sink deployments). *)

val forward_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Emit a whole batch on the egress (ownership passes on; the batch is
    released when no egress is set or it is empty). *)

val raise_event : t -> Openmb_core.Event.t -> unit
(** Send an event up to the agent (no-op before an agent attaches). *)

val set_op_active : t -> bool -> unit
(** Called by the agent while southbound ops execute; the packet path
    then applies [cost.op_slowdown]. *)

val op_active : t -> bool

val inject :
  t ->
  Openmb_net.Packet.t ->
  side_effects:bool ->
  work:(Openmb_net.Packet.t -> unit) ->
  unit
(** Run [work] on the packet after data-path queueing and the modelled
    per-packet processing cost.  [work] performs the MB's state updates
    and (only when [side_effects] is true) any forwarding/alerting.
    Records per-packet latency including queueing, and the ["pkt"]
    timeline entry. *)

val inject_batch :
  t ->
  Openmb_net.Packet_batch.t ->
  side_effects:bool ->
  work:(Openmb_net.Packet_batch.t -> unit) ->
  unit
(** Batch form of {!inject}: the whole batch is charged
    [n × per-packet cost] on the serial data-path clock as a single
    event, and counters / latency stats / histograms are updated once
    with weight [n] instead of per packet.  Batch sizes feed the
    ["mb.batch_occupancy"] count histogram.  [work] receives the batch
    at dispatch time and owns it.  An empty batch is released without
    scheduling anything. *)

val process_batch :
  t ->
  Openmb_net.Packet_batch.t ->
  side_effects:bool ->
  process:(Openmb_net.Packet.t -> Openmb_net.Packet.t option) ->
  unit
(** Default batch hook: {!inject_batch}, then loop [process] over the
    members — [Some p'] rewrites the member in place (key columns
    refreshed), [None] drops it — compact, and {!forward_batch} the
    survivors.  A middlebox whose scalar path is [process]-shaped gets
    batch support in one line; vectorized middleboxes use
    {!inject_batch} directly. *)

val register_series : t -> Openmb_sim.Timeseries.t -> unit
(** Register this MB's per-instance scrape set on a {!Openmb_sim.Timeseries}
    scraper: [<name>.pkts] (packets processed, Sum), [<name>.dp_backlog_us]
    (data-path queueing backlog, Max) and [<name>.lat_mean_us] (mean
    per-packet latency, Max).  The shared registry metrics ([mb.pkts],
    ...) aggregate all MBs on one telemetry instance; these series keep
    per-MB identity, which is what the dashboard and the future
    autoscaler consume.  The sources only read MB state.  Unregister by
    dropping the scraper — series handles do not outlive it. *)

val latency_stats : t -> Openmb_sim.Stats.t
(** Per-packet processing latency (including queueing). *)

val latency_during_op_stats : t -> Openmb_sim.Stats.t
(** Latency of the subset of packets that arrived while a state
    operation was executing (the §8.2 get-call comparison). *)

val packets_processed : t -> int

val record : t -> kind:string -> detail:string -> unit
(** Log a timeline entry under this MB's name. *)

(** {1 Chunk helpers} *)

val seal_json :
  t ->
  role:Openmb_core.Taxonomy.role ->
  partition:Openmb_core.Taxonomy.partition ->
  key:Openmb_net.Hfl.t ->
  Openmb_wire.Json.t ->
  Openmb_core.Chunk.t
(** Serialize a JSON value and seal it as a chunk of this MB's kind. *)

val unseal_json :
  t -> Openmb_core.Chunk.t -> (Openmb_wire.Json.t, Openmb_core.Errors.t) result
(** Unseal and parse a chunk produced by a same-kind MB. *)

val seal_raw :
  t ->
  role:Openmb_core.Taxonomy.role ->
  partition:Openmb_core.Taxonomy.partition ->
  key:Openmb_net.Hfl.t ->
  string ->
  Openmb_core.Chunk.t
(** Seal an MB-private binary serialization (used by RE's cache). *)

val unseal_raw : t -> Openmb_core.Chunk.t -> (string, Openmb_core.Errors.t) result

(** {1 Impl assembly} *)

val default_impl : t -> table_entries:(unit -> int) -> Openmb_core.Southbound.impl
(** A southbound impl with this base's name/kind/cost wired in, config
    ops backed by {!config}, granularity {!Openmb_net.Hfl.full_granularity},
    and every state operation returning
    [Error (Illegal_operation _)] and packet processing doing nothing —
    middleboxes override the operations they support. *)
