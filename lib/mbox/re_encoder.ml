open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type mode = Explicit | Implicit

(* One per-decoder encoding context: cache + fingerprint table mapping
   a token value to its most recent absolute offset. *)
type ctx = {
  cache : Re_cache.t;
  fingerprints : (int, int) Hashtbl.t;
  mutable ctx_encoded_bytes : int;
}

type t = {
  base : Mb_base.t;
  mode : mode;
  capacity : int;
  mutable ctxs : ctx array;
  mutable flows : (Addr.prefix * int) list;  (* CacheFlows: prefix -> cache index *)
  mutable total_payload : int;
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 390.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 1.0;
    serialize_per_chunk = Time.ms 2.0;
    serialize_per_byte = Time.us 0.5;
    deserialize_per_chunk = Time.ms 1.0;
    deserialize_per_byte = Time.us 0.25;
  }

let new_ctx capacity =
  { cache = Re_cache.create ~capacity (); fingerprints = Hashtbl.create 4096;
    ctx_encoded_bytes = 0 }

let clone_ctx c =
  {
    cache = Re_cache.clone c.cache;
    fingerprints = Hashtbl.copy c.fingerprints;
    ctx_encoded_bytes = c.ctx_encoded_bytes;
  }

let create engine ?recorder ?telemetry ?(cost = default_cost) ?(capacity_tokens = 65536)
    ?(mode = Explicit) ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"re-encoder" ~cost () in
  Config_tree.set (Mb_base.config base) [ "NumCaches" ] [ Json.Int 1 ];
  Config_tree.set (Mb_base.config base) [ "CacheFlows" ] [];
  {
    base;
    mode;
    capacity = capacity_tokens;
    ctxs = [| new_ctx capacity_tokens |];
    flows = [];
    total_payload = 0;
  }

let base t = t.base
let num_caches t = Array.length t.ctxs

let cache t i =
  if i < 0 || i >= Array.length t.ctxs then invalid_arg "Re_encoder.cache: bad index";
  t.ctxs.(i).cache

let cache_index_for t (p : Packet.t) =
  let rec scan = function
    | [] -> 0
    | (prefix, idx) :: rest -> if Addr.in_prefix p.dst_ip prefix then idx else scan rest
  in
  let idx = scan t.flows in
  if idx < Array.length t.ctxs then idx else 0

(* Greedy longest-match encoding over the token sequence. *)
let encode_payload ctx payload =
  let tokens = Payload.tokens payload in
  let n = Array.length tokens in
  let segments = ref [] in
  let lit_start = ref 0 in
  let flush_literal upto =
    if upto > !lit_start then
      segments :=
        Packet.Literal (Payload.of_tokens (Array.sub tokens !lit_start (upto - !lit_start)))
        :: !segments
  in
  let matched_tokens = ref 0 in
  let i = ref 0 in
  while !i < n do
    let token = tokens.(!i) in
    let hit =
      match Hashtbl.find_opt ctx.fingerprints token with
      | Some off when Re_cache.in_window ctx.cache off && Re_cache.read ctx.cache ~offset:off = Some token ->
        Some off
      | Some _ | None -> None
    in
    (match hit with
    | Some off ->
      (* Extend the match as far as cache and payload agree. *)
      let len = ref 1 in
      while
        !i + !len < n
        && Re_cache.read ctx.cache ~offset:(off + !len) = Some tokens.(!i + !len)
      do
        incr len
      done;
      flush_literal !i;
      segments := Packet.Shim { offset = off; len = !len } :: !segments;
      matched_tokens := !matched_tokens + !len;
      i := !i + !len;
      lit_start := !i
    | None -> incr i)
  done;
  flush_literal n;
  (List.rev !segments, !matched_tokens)

let append_and_index ctx tokens =
  let bse = Re_cache.append ctx.cache tokens in
  Array.iteri (fun i token -> Hashtbl.replace ctx.fingerprints token (bse + i)) tokens;
  bse

let encode t (p : Packet.t) =
  match p.body with
  | Packet.Encoded _ -> p (* already encoded upstream; pass through *)
  | Packet.Raw payload ->
    t.total_payload <- t.total_payload + Payload.size_bytes payload;
    if Payload.token_count payload = 0 then p
    else begin
      let idx = cache_index_for t p in
      let ctx = t.ctxs.(idx) in
      let segments, matched = encode_payload ctx payload in
      let tokens = Payload.tokens payload in
      let append_base = append_and_index ctx tokens in
      (* Caches cloned by NumCaches but not yet given their own traffic
         by CacheFlows mirror every append, so they stay identical to
         the original cache until the split takes effect (§6.1). *)
      let assigned i = i = 0 || List.exists (fun (_, j) -> j = i) t.flows in
      Array.iteri
        (fun i other ->
          if i <> idx && not (assigned i) then ignore (append_and_index other tokens))
        t.ctxs;
      ctx.ctx_encoded_bytes <- ctx.ctx_encoded_bytes + (matched * Payload.token_bytes);
      let append_base = match t.mode with Explicit -> append_base | Implicit -> -1 in
      { p with body = Packet.Encoded { cache_id = idx; append_base; segments; orig = payload } }
    end

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      Mb_base.forward t.base (encode t p))

let receive_batch t b =
  Mb_base.process_batch t.base b ~side_effects:true
    ~process:(fun p -> Some (encode t p))

(* ------------------------------------------------------------------ *)
(* Configuration hooks                                                 *)
(* ------------------------------------------------------------------ *)

let set_num_caches t n =
  if n < 1 then Error (Errors.Op_failed "NumCaches must be >= 1")
  else begin
    let cur = Array.length t.ctxs in
    if n > cur then begin
      (* Clone the original cache into each new slot (§6.1 step 3). *)
      let fresh = Array.init (n - cur) (fun _ -> clone_ctx t.ctxs.(0)) in
      t.ctxs <- Array.append t.ctxs fresh;
      Mb_base.record t.base ~kind:"config"
        ~detail:(Printf.sprintf "NumCaches %d->%d (cloned cache 0)" cur n)
    end
    else if n < cur then t.ctxs <- Array.sub t.ctxs 0 n;
    Ok ()
  end

let set_cache_flows t values =
  match
    List.mapi
      (fun i v ->
        match v with
        | Json.String s -> (Addr.prefix_of_string s, i)
        | _ -> invalid_arg "CacheFlows values must be prefix strings")
      values
  with
  | flows ->
    t.flows <- flows;
    Mb_base.record t.base ~kind:"config"
      ~detail:
        ("CacheFlows "
        ^ String.concat ","
            (List.map (fun (p, i) -> Printf.sprintf "%s->%d" (Addr.prefix_to_string p) i) flows));
    Ok ()
  | exception Invalid_argument msg -> Error (Errors.Op_failed msg)

let set_config t path values =
  let store () =
    match Config_tree.set (Mb_base.config t.base) path values with
    | () -> Ok ()
    | exception Invalid_argument msg -> Error (Errors.Op_failed msg)
  in
  match path with
  | [ "NumCaches" ] -> (
    match values with
    | [ Json.Int n ] -> (
      match set_num_caches t n with Ok () -> store () | Error e -> Error e)
    | _ -> Error (Errors.Op_failed "NumCaches expects a single integer"))
  | [ "CacheFlows" ] -> (
    match set_cache_flows t values with Ok () -> store () | Error e -> Error e)
  | _ -> store ()

(* The encoder's caches are shared supporting state; exporting them is
   supported for completeness (a single chunk holding every cache),
   though the control applications use the internal NumCaches clone. *)
let serialize_all t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%d\n" (Array.length t.ctxs));
  Array.iter
    (fun ctx ->
      let s = Re_cache.serialize ctx.cache in
      Buffer.add_string buf (Printf.sprintf "%d\n" (String.length s));
      Buffer.add_string buf s)
    t.ctxs;
  Buffer.contents buf

let deserialize_all s =
  let fail () = invalid_arg "Re_encoder: corrupt cache bundle" in
  let newline_after pos =
    match String.index_from_opt s pos '\n' with Some i -> i | None -> fail ()
  in
  let nl0 = newline_after 0 in
  let n = int_of_string (String.sub s 0 nl0) in
  let pos = ref (nl0 + 1) in
  Array.init n (fun _ ->
      let nl = newline_after !pos in
      let len = int_of_string (String.sub s !pos (nl - !pos)) in
      let body = String.sub s (nl + 1) len in
      pos := nl + 1 + len;
      let cache = Re_cache.deserialize body in
      let fingerprints = Hashtbl.create 4096 in
      (* Rebuild fingerprints from resident contents. *)
      for off = max 0 (Re_cache.pos cache - Re_cache.capacity cache) to Re_cache.pos cache - 1 do
        match Re_cache.read cache ~offset:off with
        | Some token -> Hashtbl.replace fingerprints token off
        | None -> ()
      done;
      { cache; fingerprints; ctx_encoded_bytes = 0 })

let impl t =
  let default = Mb_base.default_impl t.base ~table_entries:(fun () -> 0) in
  {
    default with
    set_config = set_config t;
    get_support_shared =
      (fun () ->
        Ok
          (Some
             (Mb_base.seal_raw t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Shared
                ~key:Hfl.any (serialize_all t))));
    put_support_shared =
      (fun chunk ->
        if chunk.Chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Shared
        then Error (Errors.Illegal_operation "expected shared supporting chunk")
        else
          match Mb_base.unseal_raw t.base chunk with
          | Error e -> Error e
          | Ok plain -> (
            match deserialize_all plain with
            | ctxs ->
              t.ctxs <- ctxs;
              Ok ()
            | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg)));
    stats =
      (fun _ ->
        {
          Southbound.empty_stats with
          shared_support_bytes = String.length (serialize_all t);
        });
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              ignore (encode t p)));
  }

let encoded_bytes t = Array.fold_left (fun acc c -> acc + c.ctx_encoded_bytes) 0 t.ctxs

let encoded_bytes_for t i =
  if i < 0 || i >= Array.length t.ctxs then
    invalid_arg "Re_encoder.encoded_bytes_for: bad index";
  t.ctxs.(i).ctx_encoded_bytes

let total_payload_bytes t = t.total_payload
