open Openmb_sim
open Openmb_wire
open Openmb_net
open Openmb_core

type action = Allow | Deny

type rule = { rl_match : Hfl.t; rl_action : action }

type t = {
  base : Mb_base.t;
  table : action State_table.t;  (* verdict cache *)
  mutable allowed : int;
  mutable denied : int;
  mutable shared_exported : bool;
}

let default_cost : Southbound.cost_model =
  {
    per_packet = Time.us 40.0;
    op_slowdown = 1.02;
    scan_per_entry = Time.us 5.0;
    serialize_per_chunk = Time.us 60.0;
    serialize_per_byte = Time.us 0.01;
    deserialize_per_chunk = Time.us 12.0;
    deserialize_per_byte = Time.us 0.004;
  }

let action_to_string = function Allow -> "allow" | Deny -> "deny"

let action_of_string = function
  | "allow" -> Allow
  | "deny" -> Deny
  | s -> invalid_arg (Printf.sprintf "Firewall.action_of_string: %S" s)

let rule_to_json r =
  Json.Assoc
    [
      ("match", Json.String (Hfl.to_string r.rl_match));
      ("action", Json.String (action_to_string r.rl_action));
    ]

let rule_of_json j =
  {
    rl_match = Hfl.of_string (Json.get_string (Json.member "match" j));
    rl_action = action_of_string (Json.get_string (Json.member "action" j));
  }

let create engine ?recorder ?telemetry ?(cost = default_cost) ?(rules = []) ?(default_action = Allow)
    ~name () =
  let base = Mb_base.create engine ?recorder ?telemetry ~name ~kind:"fw" ~cost () in
  Config_tree.set (Mb_base.config base) [ "rules" ] (List.map rule_to_json rules);
  Config_tree.set (Mb_base.config base) [ "default" ]
    [ Json.String (action_to_string default_action) ];
  {
    base;
    table = State_table.create ~granularity:Hfl.full_granularity ();
    allowed = 0;
    denied = 0;
    shared_exported = false;
  }

let base t = t.base

let rules t =
  match Config_tree.get (Mb_base.config t.base) [ "rules" ] with
  | [ { values; _ } ] -> List.map rule_of_json values
  | _ -> []

let default_action t =
  match Config_tree.get (Mb_base.config t.base) [ "default" ] with
  | [ { values = Json.String s :: _; _ } ] -> action_of_string s
  | _ -> Allow

let evaluate t (p : Packet.t) =
  let rec scan = function
    | [] -> default_action t
    | r :: rest -> if Hfl.matches_packet r.rl_match p then r.rl_action else scan rest
  in
  scan (rules t)

let process t (p : Packet.t) ~side_effects =
  let entry, _created =
    State_table.find_or_create_words t.table ~pa:(Five_tuple.word_a_packet p)
      ~pb:(Five_tuple.word_b_packet p)
      ~tuple:(fun () -> Five_tuple.of_packet p)
      ~default:(fun () -> evaluate t p)
  in
  (* Shared reporting counters merge by addition on scale-down; replays
     must not double-count (§4.1.3). *)
  if side_effects then begin
    match entry.value with
    | Allow -> t.allowed <- t.allowed + 1
    | Deny -> t.denied <- t.denied + 1
  end;
  if entry.moved then
    Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
  if t.shared_exported then
    Mb_base.raise_event t.base (Event.Reprocess { key = Hfl.any; packet = p });
  if side_effects && entry.value = Allow then Some p else None

let receive t p =
  Mb_base.inject t.base p ~side_effects:true ~work:(fun p ->
      match process t p ~side_effects:true with
      | Some allowed -> Mb_base.forward t.base allowed
      | None -> ())

(* Vectorized batch path: the rule list and default action — parsed
   from the config JSON on every verdict-cache miss by the scalar path —
   are hoisted lazily to at most one parse per batch.  Denied members
   are compacted out in place. *)
let receive_batch t b =
  Mb_base.inject_batch t.base b ~side_effects:true ~work:(fun b ->
      let hoisted = lazy (rules t, default_action t) in
      let eval p =
        let rls, dflt = Lazy.force hoisted in
        let rec scan = function
          | [] -> dflt
          | r :: rest -> if Hfl.matches_packet r.rl_match p then r.rl_action else scan rest
        in
        scan rls
      in
      let n = Packet_batch.length b in
      let ka = Packet_batch.key_a b and kb = Packet_batch.key_b b in
      let allowed = ref 0 and denied = ref 0 in
      for i = 0 to n - 1 do
        let p = Packet_batch.get b i in
        (* Probe straight from the batch's key columns; the tuple is
           only built for first-seen flows. *)
        let entry, _created =
          State_table.find_or_create_words t.table ~pa:(Array.unsafe_get ka i)
            ~pb:(Array.unsafe_get kb i)
            ~tuple:(fun () -> Five_tuple.of_packet p)
            ~default:(fun () -> eval p)
        in
        (match entry.value with
        | Allow -> incr allowed
        | Deny ->
          incr denied;
          Packet_batch.drop b i);
        if entry.moved then
          Mb_base.raise_event t.base (Event.Reprocess { key = entry.key; packet = p });
        if t.shared_exported then
          Mb_base.raise_event t.base (Event.Reprocess { key = Hfl.any; packet = p })
      done;
      t.allowed <- t.allowed + !allowed;
      t.denied <- t.denied + !denied;
      ignore (Packet_batch.compact b : int);
      Mb_base.forward_batch t.base b)

(* ------------------------------------------------------------------ *)
(* Southbound implementation                                           *)
(* ------------------------------------------------------------------ *)

let chunk_of_entry t (entry : action State_table.entry) =
  Mb_base.seal_json t.base ~role:Taxonomy.Supporting ~partition:Taxonomy.Per_flow
    ~key:entry.key
    (Json.Assoc [ ("verdict", Json.String (action_to_string entry.value)) ])

let get_support_perflow t hfl =
  match Hfl.compatible_with_granularity hfl (State_table.granularity t.table) with
  | false -> Error Errors.Granularity_too_fine
  | true ->
    (* Skip entries an earlier pending transfer already exported. *)
    let entries =
      List.filter
        (fun (e : action State_table.entry) -> not e.moved)
        (State_table.matching t.table hfl)
    in
    List.iter (fun (e : action State_table.entry) -> e.moved <- true) entries;
    State_table.add_move_filter t.table hfl;
    Ok (List.map (chunk_of_entry t) entries)

let put_support_perflow t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Supporting || chunk.partition <> Taxonomy.Per_flow then
    Error (Errors.Illegal_operation "expected per-flow supporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json -> (
      match action_of_string (Json.get_string (Json.member "verdict" json)) with
      | verdict ->
        State_table.insert t.table ~key:chunk.key verdict;
        Ok ()
      | exception Invalid_argument msg -> Error (Errors.Bad_chunk msg))

let del_support_perflow t hfl =
  let removed = State_table.remove_moved_matching t.table hfl in
  State_table.remove_move_filter t.table hfl;
  Ok (List.length removed)

let counters_to_json t =
  Json.Assoc [ ("allowed", Json.Int t.allowed); ("denied", Json.Int t.denied) ]

let get_report_shared t () =
  t.shared_exported <- true;
  Ok
    (Some
       (Mb_base.seal_json t.base ~role:Taxonomy.Reporting ~partition:Taxonomy.Shared
          ~key:Hfl.any (counters_to_json t)))

let put_report_shared t (chunk : Chunk.t) =
  if chunk.role <> Taxonomy.Reporting || chunk.partition <> Taxonomy.Shared then
    Error (Errors.Illegal_operation "expected shared reporting chunk")
  else
    match Mb_base.unseal_json t.base chunk with
    | Error e -> Error e
    | Ok json ->
      t.allowed <- t.allowed + Json.get_int (Json.member "allowed" json);
      t.denied <- t.denied + Json.get_int (Json.member "denied" json);
      Ok ()

let stats t hfl =
  let entries = State_table.matching t.table hfl in
  let bytes =
    List.fold_left (fun acc e -> acc + Chunk.size_bytes (chunk_of_entry t e)) 0 entries
  in
  {
    Southbound.empty_stats with
    perflow_support_chunks = List.length entries;
    perflow_support_bytes = bytes;
    shared_report_bytes = String.length (Json.to_string (counters_to_json t));
  }

let impl t =
  let default =
    Mb_base.default_impl t.base ~table_entries:(fun () -> State_table.size t.table)
  in
  {
    default with
    get_support_perflow = get_support_perflow t;
    put_support_perflow = put_support_perflow t;
    del_support_perflow = del_support_perflow t;
    get_report_shared = get_report_shared t;
    put_report_shared = put_report_shared t;
    stats = stats t;
    process_packet =
      (fun p ~side_effects ->
        if side_effects then receive t p
        else
          Mb_base.inject t.base p ~side_effects:false ~work:(fun p ->
              ignore (process t p ~side_effects:false)));
  }

let allowed t = t.allowed
let denied t = t.denied
let cached_verdicts t = State_table.size t.table
