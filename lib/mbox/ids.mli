(** Connection-tracking intrusion detection system (the repo's Bro
    analog).

    Maintains a connection record — TCP state machine, history string,
    byte/packet counters, and an analyzer tree including an HTTP
    analyzer — for every flow, keyed on the full five-tuple.  Produces
    [conn.log] and [http.log] entries (the outputs the paper diffs for
    its correctness experiment) and raises alerts on exploit signatures
    and port scans.

    OpenMB integration: per-flow supporting state is the connection
    record (serialized as a deep JSON tree standing in for Bro's >100
    serializable classes); shared supporting state is the scan-detector
    table; getting state sets the [moved] flag so packet-driven updates
    raise re-process events; deleting moved state does not produce
    spurious log entries. *)

type t

type conn_entry = {
  ce_tuple : Openmb_net.Five_tuple.t;
  ce_start : float;  (** Seconds. *)
  ce_duration : float;
  ce_orig_bytes : int;
  ce_resp_bytes : int;
  ce_state : string;  (** Bro-style: SF, S0, S1, RSTO, OTH... *)
  ce_anomalous : bool;
      (** Entry produced by abrupt termination (state stranded at an MB
          that stopped seeing the flow's packets). *)
}

type http_entry = {
  he_tuple : Openmb_net.Five_tuple.t;
  he_method : string;
  he_host : string;
  he_uri : string;
  he_status : int;
}

type alert = {
  al_time : float;
  al_kind : string;  (** ["http-exploit"] or ["port-scan"]. *)
  al_source : string;  (** Offending endpoint. *)
  al_detail : string;
}

val create :
  Openmb_sim.Engine.t ->
  ?recorder:Openmb_sim.Recorder.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  ?cost:Openmb_core.Southbound.cost_model ->
  name:string ->
  unit ->
  t

val default_cost : Openmb_core.Southbound.cost_model
(** Bro-calibrated costs: heavyweight per-packet processing and
    expensive per-chunk serialization (§8.2). *)

val impl : t -> Openmb_core.Southbound.impl
val base : t -> Mb_base.t

val receive : t -> Openmb_net.Packet.t -> unit
(** Network entry point: process with side effects and forward on the
    egress. *)

val receive_batch : t -> Openmb_net.Packet_batch.t -> unit
(** Batch entry point: the scalar analysis runs per member, the batch
    is forwarded whole. *)

val conn_log : t -> conn_entry list
(** Completed-connection log, in emission order. *)

val http_log : t -> http_entry list
val alerts : t -> alert list

val open_connections : t -> int
(** Live connection records. *)

val finalize : t -> unit
(** Tear the instance down: every still-open, non-moved connection is
    force-logged as an anomalous entry (what happens to stranded state
    when an MB is deprecated or was loaded from a whole-VM snapshot). *)

val anomalous_entries : t -> int
(** Anomalous [conn.log] entries emitted so far. *)

val memory_bytes : t -> int
(** Modelled resident size of per-flow state (for the snapshot-size
    experiment): the in-memory footprint is larger than the serialized
    form by a constant factor. *)

val serialized_bytes : t -> key:Openmb_net.Hfl.t -> int
(** Total serialized size of the per-flow state matching [key] — the
    number of bytes OpenMB would move. *)

val memory_bytes_for : t -> key:Openmb_net.Hfl.t -> int
(** In-memory footprint of the state matching [key]. *)

val snapshot_into : t -> t -> unit
(** Copy {e all} state (connection records and scan table) into another
    instance, as restoring a whole-VM snapshot would — the baseline
    §8.1.2 compares against.  Bypasses the OpenMB APIs by design. *)
