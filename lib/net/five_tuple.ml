type t = {
  src_ip : Addr.t;
  dst_ip : Addr.t;
  src_port : int;
  dst_port : int;
  proto : Packet.proto;
}

let of_packet (p : Packet.t) =
  {
    src_ip = p.src_ip;
    dst_ip = p.dst_ip;
    src_port = p.src_port;
    dst_port = p.dst_port;
    proto = p.proto;
  }

let reverse t =
  {
    src_ip = t.dst_ip;
    dst_ip = t.src_ip;
    src_port = t.dst_port;
    dst_port = t.src_port;
    proto = t.proto;
  }

let compare a b =
  let c = Addr.compare a.src_ip b.src_ip in
  if c <> 0 then c
  else
    let c = Addr.compare a.dst_ip b.dst_ip in
    if c <> 0 then c
    else
      let c = Int.compare a.src_port b.src_port in
      if c <> 0 then c
      else
        let c = Int.compare a.dst_port b.dst_port in
        if c <> 0 then c else Stdlib.compare a.proto b.proto

let canonical t =
  let r = reverse t in
  if compare t r <= 0 then t else r

let equal a b = compare a b = 0

let to_string t =
  Printf.sprintf "%s %s:%d>%s:%d"
    (Packet.proto_to_string t.proto)
    (Addr.to_string t.src_ip) t.src_port (Addr.to_string t.dst_ip) t.dst_port

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* ------------------------------------------------------------------ *)
(* Packed keys                                                         *)
(* ------------------------------------------------------------------ *)

(* The whole five-tuple fits in 98 bits, i.e. two native ints on 64-bit
   platforms: [pa] = src_ip:32 | src_port:16 and [pb] = dst_ip:32 |
   dst_port:16 | proto:2.  The hash is precomputed at pack time so hot
   lookups neither allocate nor walk any structure. *)
type packed = { pa : int; pb : int; phash : int }

let proto_code = function Packet.Tcp -> 0 | Packet.Udp -> 1 | Packet.Icmp -> 2
let proto_of_code = function 0 -> Packet.Tcp | 1 -> Packet.Udp | _ -> Packet.Icmp

(* Avalanching two-word mixer (murmur3-finalizer style, one extra
   round): [pb] is spread by a multiply before combining so the two
   words never cancel, then two xor-shift/multiply rounds diffuse every
   key bit into every hash bit — including the low bits the flat
   tables' power-of-two slot masks keep.  The old single-round mixer
   (and the polymorphic [Hashtbl.hash] before it) clustered adversarial
   key patterns like sequential ports or same-subnet addresses; the
   bucket-skew property in test_net pins the new distribution.
   Constants are odd and fit OCaml's 63-bit native int, in which all
   arithmetic here wraps mod 2^63.  Result is non-negative, as the flat
   tables require ([-1] marks their empty slots). *)
let mix pa pb =
  let h = pa + (pb * 0x2545F4914F6CDD1D) in
  let h = (h lxor (h lsr 30)) * 0x3C79AC492BA7B653 in
  let h = (h lxor (h lsr 27)) * 0x1C69B3F74AC4AE35 in
  (h lxor (h lsr 31)) land max_int

let hash_words ~pa ~pb = mix pa pb

let pack_ints src_ip src_port dst_ip dst_port code =
  let pa = (src_ip lsl 16) lor (src_port land 0xFFFF) in
  let pb = (dst_ip lsl 18) lor ((dst_port land 0xFFFF) lsl 2) lor code in
  { pa; pb; phash = mix pa pb }

(* Scalar word accessors: the packed words of a tuple without building
   the [packed] record — the state-table fast path probes flat tables
   with these and allocates nothing. *)
let word_a t = (Addr.to_int t.src_ip lsl 16) lor (t.src_port land 0xFFFF)

let word_b t =
  (Addr.to_int t.dst_ip lsl 18)
  lor ((t.dst_port land 0xFFFF) lsl 2)
  lor proto_code t.proto

let word_a_packet (p : Packet.t) =
  (Addr.to_int p.src_ip lsl 16) lor (p.src_port land 0xFFFF)

let word_b_packet (p : Packet.t) =
  (Addr.to_int p.dst_ip lsl 18)
  lor ((p.dst_port land 0xFFFF) lsl 2)
  lor proto_code p.proto

(* Field-level variants for callers that hold the header fields loose
   (e.g. a state table reconstructing words from a stored Hfl key)
   without a tuple record to pass. *)
let word_a_of ~src_ip ~src_port = (Addr.to_int src_ip lsl 16) lor (src_port land 0xFFFF)

let word_b_of ~dst_ip ~dst_port ~proto =
  (Addr.to_int dst_ip lsl 18) lor ((dst_port land 0xFFFF) lsl 2) lor proto_code proto

let hash t = mix (word_a t) (word_b t)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let pack t =
  pack_ints (Addr.to_int t.src_ip) t.src_port (Addr.to_int t.dst_ip) t.dst_port
    (proto_code t.proto)

let pack_packet (p : Packet.t) =
  pack_ints (Addr.to_int p.src_ip) p.src_port (Addr.to_int p.dst_ip) p.dst_port
    (proto_code p.proto)

let packed_reverse k =
  pack_ints (k.pb lsr 18) ((k.pb lsr 2) land 0xFFFF) (k.pa lsr 16) (k.pa land 0xFFFF)
    (k.pb land 3)

let unpack k =
  {
    src_ip = Addr.of_int (k.pa lsr 16);
    src_port = k.pa land 0xFFFF;
    dst_ip = Addr.of_int (k.pb lsr 18);
    dst_port = (k.pb lsr 2) land 0xFFFF;
    proto = proto_of_code (k.pb land 3);
  }

let packed_equal a b = a.pa = b.pa && a.pb = b.pb
let packed_hash k = k.phash

(* Word-level access for the batch packet path: [Packet_batch] stores
   the two packed words in parallel int arrays and rebuilds a probe key
   only at table-lookup time. *)
let packed_pa k = k.pa
let packed_pb k = k.pb
let pack_words ~pa ~pb = { pa; pb; phash = mix pa pb }

(* Direction-insensitive hash without materializing the reversed key:
   feed the smaller (pa, pb) word pair of the two directions through the
   same finalizer.  Used for shard placement, so both directions of a
   connection land on the same shard. *)
let packed_canonical_hash k =
  let rpa = ((k.pb lsr 18) lsl 16) lor ((k.pb lsr 2) land 0xFFFF) in
  let rpb = ((k.pa lsr 16) lsl 18) lor ((k.pa land 0xFFFF) lsl 2) lor (k.pb land 3) in
  if k.pa < rpa || (k.pa = rpa && k.pb <= rpb) then mix k.pa k.pb else mix rpa rpb

module Packed_table = Hashtbl.Make (struct
  type t = packed

  let equal = packed_equal
  let hash = packed_hash
end)
