(* Cache-conscious flat open-addressing table over two-word packed keys.

   Every hot per-flow path in the system — state-table probes, NAT
   mappings, flow-table exact matches, the agent's dedup caches — walks
   a table keyed by a packed five-tuple (or a plain int widened into the
   same two-word shape).  Generic [Hashtbl] pays a pointer chase per
   bucket link and an allocation per insert for the bucket cell; at 10k+
   entries nearly every probe is a cache miss.  This table is a
   struct-of-arrays layout instead: parallel int arrays for the two key
   words and the precomputed hash, a value column, and a byte-wide flag
   column, so a probe touches a handful of flat arrays at the same index
   and a miss is decided from the hash column alone without ever loading
   a key or value pointer.

   Probing is Robin Hood linear probing: an insert displaces any
   incumbent that sits closer to its home slot than the new key is to
   its own, which bounds probe-length variance, and a lookup can stop as
   soon as it reaches a slot whose displacement is smaller than the
   distance already travelled (the key, were it present, would have
   evicted that slot).  Deletes do backward-shift compaction — the
   successor chain slides back one slot — so flow churn never
   accumulates tombstones and long-lived tables keep short probes.

   Capacity is a power of two, grown at 3/4 load by re-placing every
   slot into arrays of twice the size.  The stored hash must be
   non-negative ([-1] marks an empty slot); {!Five_tuple.hash_words}
   and friends guarantee that. *)

type 'a t = {
  mutable ka : int array;  (* key word a *)
  mutable kb : int array;  (* key word b *)
  mutable hs : int array;  (* full mixed hash; -1 = empty slot *)
  (* Values are kept pre-wrapped in [Some] so a hit returns the stored
     option without allocating; [None] doubles as the empty filler. *)
  mutable vs : 'a option array;
  (* Per-slot flag column (the [moved] bit of a state entry, the
     "replied" bit of an agent op): rides along through displacement,
     backward shifts and growth. *)
  mutable fl : Bytes.t;
  mutable mask : int;  (* capacity - 1 *)
  mutable len : int;
  mutable limit : int;  (* grow when [len] reaches this *)
}

let min_capacity = 8

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let alloc cap =
  {
    ka = Array.make cap 0;
    kb = Array.make cap 0;
    hs = Array.make cap (-1);
    vs = Array.make cap None;
    fl = Bytes.make cap '\000';
    mask = cap - 1;
    len = 0;
    limit = cap - (cap / 4);
  }

let create ?(capacity = min_capacity) () =
  let cap = pow2 (max capacity min_capacity) min_capacity in
  alloc cap

let length t = t.len
let capacity t = t.mask + 1

(* Displacement of the occupant of slot [i] from its home slot.  With a
   power-of-two capacity, [(i - h) land mask] equals
   [(i - (h land mask)) mod capacity], so the full stored hash works
   directly. *)
let[@inline] dist mask i h = (i - h) land mask

(* Core probe: index of the slot holding (pa, pb), or [-1].  Stops at an
   empty slot or at a slot whose displacement is below the distance
   travelled (the Robin Hood invariant makes a later hit impossible).
   The loop is a top-level function taking everything as arguments: an
   inner [let rec] would capture the columns in a heap closure on every
   probe (no flambda), and this is the hottest loop in the tree. *)
let rec probe hs ka kb mask pa pb h i d =
  let hv = Array.unsafe_get hs i in
  if hv = h && Array.unsafe_get ka i = pa && Array.unsafe_get kb i = pb then i
  else if hv = -1 || dist mask i hv < d then -1
  else probe hs ka kb mask pa pb h ((i + 1) land mask) (d + 1)

(* The home slot is probed inline: at <= 3/4 load most keys sit at
   displacement 0, and the unrolled first step skips the out-of-line
   loop call (at d = 0 the displacement early-exit is vacuous, so only
   the empty check remains). *)
let[@inline] find_slot t ~pa ~pb ~h =
  let mask = t.mask in
  let i = h land mask in
  let hv = Array.unsafe_get t.hs i in
  if hv = h && Array.unsafe_get t.ka i = pa && Array.unsafe_get t.kb i = pb then i
  else if hv = -1 then -1
  else probe t.hs t.ka t.kb mask pa pb h ((i + 1) land mask) 1

let find t ~pa ~pb ~h =
  let i = find_slot t ~pa ~pb ~h in
  if i < 0 then None else Array.unsafe_get t.vs i

let mem t ~pa ~pb ~h = find_slot t ~pa ~pb ~h >= 0

let flag t ~pa ~pb ~h =
  let i = find_slot t ~pa ~pb ~h in
  i >= 0 && Bytes.unsafe_get t.fl i <> '\000'

let set_flag t ~pa ~pb ~h v =
  let i = find_slot t ~pa ~pb ~h in
  if i >= 0 then Bytes.unsafe_set t.fl i (if v then '\001' else '\000')

(* Place a key known to be absent, displacing richer incumbents (Robin
   Hood).  No equality checks: the caller established absence, and once
   an incumbent is evicted the carried key cannot equal anything further
   down its own chain. *)
let rec place t i d h pa pb v f =
  let hv = t.hs.(i) in
  if hv = -1 then begin
    t.hs.(i) <- h;
    t.ka.(i) <- pa;
    t.kb.(i) <- pb;
    t.vs.(i) <- v;
    Bytes.unsafe_set t.fl i f
  end
  else begin
    let dv = dist t.mask i hv in
    if dv < d then begin
      (* Evict the closer-to-home incumbent and keep placing it. *)
      let epa = t.ka.(i) and epb = t.kb.(i) and ev = t.vs.(i) in
      let ef = Bytes.unsafe_get t.fl i in
      t.hs.(i) <- h;
      t.ka.(i) <- pa;
      t.kb.(i) <- pb;
      t.vs.(i) <- v;
      Bytes.unsafe_set t.fl i f;
      place t ((i + 1) land t.mask) (dv + 1) hv epa epb ev ef
    end
    else place t ((i + 1) land t.mask) (d + 1) h pa pb v f
  end

let grow t =
  let old_hs = t.hs and old_ka = t.ka and old_kb = t.kb in
  let old_vs = t.vs and old_fl = t.fl in
  let cap = (t.mask + 1) * 2 in
  let fresh = alloc cap in
  t.ka <- fresh.ka;
  t.kb <- fresh.kb;
  t.hs <- fresh.hs;
  t.vs <- fresh.vs;
  t.fl <- fresh.fl;
  t.mask <- cap - 1;
  t.limit <- cap - (cap / 4);
  for i = 0 to Array.length old_hs - 1 do
    let h = Array.unsafe_get old_hs i in
    if h >= 0 then
      place t (h land t.mask) 0 h (Array.unsafe_get old_ka i)
        (Array.unsafe_get old_kb i)
        (Array.unsafe_get old_vs i)
        (Bytes.unsafe_get old_fl i)
  done

let replace t ~pa ~pb ~h v =
  if h < 0 then invalid_arg "Flat_table.replace: negative hash";
  if t.len >= t.limit then grow t;
  let i = find_slot t ~pa ~pb ~h in
  if i >= 0 then t.vs.(i) <- Some v
  else begin
    place t (h land t.mask) 0 h pa pb (Some v) '\000';
    t.len <- t.len + 1
  end

(* Backward-shift deletion: slide the probe chain after [i] back one
   slot until an empty slot or a home-positioned occupant, leaving no
   tombstone behind.  Top-level for the same no-closure reason as
   [probe] — flow churn deletes on the packet path. *)
let rec shift_back t mask i =
  let j = (i + 1) land mask in
  let hv = t.hs.(j) in
  if hv = -1 || dist mask j hv = 0 then begin
    t.hs.(i) <- -1;
    t.vs.(i) <- None;
    Bytes.unsafe_set t.fl i '\000'
  end
  else begin
    t.hs.(i) <- hv;
    t.ka.(i) <- t.ka.(j);
    t.kb.(i) <- t.kb.(j);
    t.vs.(i) <- t.vs.(j);
    Bytes.unsafe_set t.fl i (Bytes.unsafe_get t.fl j);
    shift_back t mask j
  end

let remove t ~pa ~pb ~h =
  let i = find_slot t ~pa ~pb ~h in
  if i < 0 then false
  else begin
    shift_back t t.mask i;
    t.len <- t.len - 1;
    true
  end

let clear t =
  Array.fill t.hs 0 (t.mask + 1) (-1);
  Array.fill t.vs 0 (t.mask + 1) None;
  Bytes.fill t.fl 0 (t.mask + 1) '\000';
  t.len <- 0

(* Allocation-free traversal: a plain index walk over the columns, used
   as the iteration cursor of move/export scans. *)
let iter t f =
  let n = t.mask + 1 in
  for i = 0 to n - 1 do
    if Array.unsafe_get t.hs i >= 0 then
      match Array.unsafe_get t.vs i with
      | Some v -> f ~pa:(Array.unsafe_get t.ka i) ~pb:(Array.unsafe_get t.kb i) v
      | None -> ()
  done

let fold t ~init ~f =
  let n = t.mask + 1 in
  let acc = ref init in
  for i = 0 to n - 1 do
    if Array.unsafe_get t.hs i >= 0 then
      match Array.unsafe_get t.vs i with
      | Some v -> acc := f !acc v
      | None -> ()
  done;
  !acc

(* One-pass batch probe straight off a [Packet_batch]'s parallel key
   columns (or any caller-built column triple). *)
let find_batch t ~ka ~kb ~kh ~n out =
  if Array.length out < n then invalid_arg "Flat_table.find_batch: out array too small";
  for i = 0 to n - 1 do
    Array.unsafe_set out i
      (find t ~pa:(Array.unsafe_get ka i) ~pb:(Array.unsafe_get kb i)
         ~h:(Array.unsafe_get kh i))
  done

let find_or_create_batch t ~ka ~kb ~kh ~n ~default out =
  if Array.length out < n then
    invalid_arg "Flat_table.find_or_create_batch: out array too small";
  for i = 0 to n - 1 do
    let pa = Array.unsafe_get ka i
    and pb = Array.unsafe_get kb i
    and h = Array.unsafe_get kh i in
    match find t ~pa ~pb ~h with
    | Some _ as hit -> Array.unsafe_set out i hit
    | None ->
      let v = default i in
      replace t ~pa ~pb ~h v;
      Array.unsafe_set out i (Some v)
  done

(* Longest probe chain currently in the table — the number the Robin
   Hood displacement policy keeps small; exposed for tests and bench
   diagnostics. *)
let max_probe t =
  let worst = ref 0 in
  for i = 0 to t.mask do
    let hv = t.hs.(i) in
    if hv >= 0 then worst := max !worst (dist t.mask i hv)
  done;
  !worst
