(** Cache-conscious flat open-addressing table over two-word packed
    keys — the flow-state core behind every hot per-flow path.

    Keys are two native ints (a packed five-tuple's words, or a plain
    int widened with [pb = 0]) plus a caller-supplied non-negative hash,
    normally precomputed by {!Five_tuple.hash_words} at pack time.
    Layout is struct-of-arrays: parallel int columns for the key words
    and hash, a value column, and a byte-wide flag column, so probes
    touch flat memory instead of chasing bucket pointers.  Probing is
    Robin Hood linear probing with backward-shift deletion: churn never
    accumulates tombstones, and lookups terminate early on the
    displacement invariant.

    Values are stored pre-wrapped in [Some], so {!find} returns without
    allocating.  Not thread-safe; one table per shard, like every other
    mutable structure in the simulator. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh table; [capacity] (default 8) is rounded up to a power of
    two.  Growth doubles at 3/4 load. *)

val length : 'a t -> int
(** Number of live entries. *)

val capacity : 'a t -> int
(** Current slot count (a power of two). *)

val find : 'a t -> pa:int -> pb:int -> h:int -> 'a option
(** Probe by key words and precomputed hash.  Allocation-free: the
    stored [Some] is returned as-is. *)

val mem : 'a t -> pa:int -> pb:int -> h:int -> bool

val replace : 'a t -> pa:int -> pb:int -> h:int -> 'a -> unit
(** Insert or overwrite.  A fresh insert clears the entry's flag; an
    overwrite keeps it.  Raises [Invalid_argument] on a negative hash
    ([-1] marks empty slots internally). *)

val remove : 'a t -> pa:int -> pb:int -> h:int -> bool
(** Backward-shift delete; [false] if the key was absent. *)

val flag : 'a t -> pa:int -> pb:int -> h:int -> bool
(** The entry's flag bit; [false] when absent. *)

val set_flag : 'a t -> pa:int -> pb:int -> h:int -> bool -> unit
(** Set the entry's flag bit; no-op when absent. *)

val iter : 'a t -> (pa:int -> pb:int -> 'a -> unit) -> unit
(** Visit every entry (unspecified order).  A plain index walk over the
    columns — no allocation, no intermediate list. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

val clear : 'a t -> unit
(** Drop every entry, keeping the current capacity. *)

val find_batch :
  'a t -> ka:int array -> kb:int array -> kh:int array -> n:int -> 'a option array -> unit
(** [find_batch t ~ka ~kb ~kh ~n out] probes members [0..n-1] of the
    parallel key columns (e.g. a {!Packet_batch}'s key/hash arrays) in
    one pass, filling [out.(i)] with each hit. *)

val find_or_create_batch :
  'a t ->
  ka:int array ->
  kb:int array ->
  kh:int array ->
  n:int ->
  default:(int -> 'a) ->
  'a option array ->
  unit
(** Like {!find_batch}, but a missing member is inserted with
    [default i] first; every [out.(i)] is therefore [Some _]. *)

val max_probe : 'a t -> int
(** Longest probe chain currently in the table (diagnostics). *)
