(** Transport five-tuples: the finest flow identity in the system. *)

type t = {
  src_ip : Addr.t;
  dst_ip : Addr.t;
  src_port : int;
  dst_port : int;
  proto : Packet.proto;
}

val of_packet : Packet.t -> t
(** Five-tuple of a packet as sent. *)

val reverse : t -> t
(** The tuple of the opposite direction. *)

val canonical : t -> t
(** Direction-insensitive form: the lexicographically smaller of [t]
    and [reverse t].  Two packets of the same bidirectional connection
    have equal canonical tuples. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Avalanching hash of the packed key words — identical to
    [packed_hash (pack t)], so record-keyed and packed-keyed tables
    agree.  (Replaces the polymorphic [Hashtbl.hash], whose weak mixing
    clustered sequential ports and same-subnet addresses.) *)

val to_string : t -> string
(** ["tcp 10.0.0.1:3456>1.1.1.5:80"]. *)

val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by five-tuples (direction-sensitive). *)

(** {2 Packed keys}

    A five-tuple packed into two native ints with a precomputed hash:
    the allocation-free key the packet path probes state and flow
    tables with.  Requires a 64-bit platform (the 98 key bits are split
    48/50 across the two words). *)

type packed
(** An immutable packed five-tuple key. *)

val pack : t -> packed

val pack_packet : Packet.t -> packed
(** [pack_packet p] is [pack (of_packet p)] without building the
    intermediate tuple. *)

val packed_reverse : packed -> packed
(** Packed key of the opposite direction. *)

val unpack : packed -> t

val packed_equal : packed -> packed -> bool

val packed_hash : packed -> int
(** The hash precomputed at pack time: [hash_words] of the two words. *)

val hash_words : pa:int -> pb:int -> int
(** The avalanching two-word mixer itself: non-negative, suitable as
    the [h] argument of {!Flat_table} probes.  Every place a packed key
    (or an int widened to the packed shape) is hashed composes this
    mixer. *)

val word_a : t -> int
(** First packed word of a tuple ([src_ip:32 | src_port:16]) without
    materializing the [packed] record — the allocation-free fast path
    of flat-table probes. *)

val word_b : t -> int
(** Second packed word ([dst_ip:32 | dst_port:16 | proto:2]). *)

val word_a_packet : Packet.t -> int
val word_b_packet : Packet.t -> int
(** Packed words straight from a packet's headers — [word_a (of_packet
    p)] etc. without the intermediate tuple; the batch fill path derives
    its key columns with these. *)

val word_a_of : src_ip:Addr.t -> src_port:int -> int

val word_b_of : dst_ip:Addr.t -> dst_port:int -> proto:Packet.proto -> int
(** Packed words from loose header fields, for callers without a tuple
    or packet to hand (state tables reconstructing probe words from a
    stored Hfl key). *)

val packed_pa : packed -> int
(** First packed word: [src_ip:32 | src_port:16]. *)

val packed_pb : packed -> int
(** Second packed word: [dst_ip:32 | dst_port:16 | proto:2]. *)

val pack_words : pa:int -> pb:int -> packed
(** Rebuild a key from its two words (hash recomputed).  Inverse of
    {!packed_pa}/{!packed_pb}; the batch packet path stores the words
    in parallel int arrays and re-materializes probe keys with this. *)

val packed_canonical_hash : packed -> int
(** Direction-insensitive hash: equal for a key and its
    {!packed_reverse}, computed without materializing the reverse.
    This is the shard-placement hash — both directions of a
    bidirectional connection map to the same shard. *)

module Packed_table : Hashtbl.S with type key = packed
(** Hash tables keyed by packed five-tuples (direction-sensitive). *)
