open Openmb_sim

(* Structure-of-arrays packet vector.

   The batch path amortizes per-packet engine events, telemetry updates
   and dispatch overhead over vectors of packets.  The hot columns —
   packed five-tuple key words, wire size, arrival time, ingress slot —
   are parallel int/float arrays so a classification pass touches flat
   memory and never follows a [Packet.t] pointer; the packet records
   themselves ride in a payload slot array for the scalar sidecars
   (wildcard rule matches, middlebox state updates, punts).

   Batches are pooled and reused like the engine's event cells: a
   steady-state chain allocates no batch structure per window.  A batch
   posted to another shard is {!detach}ed first — pools are
   single-domain, so the receiving shard's release must not touch the
   sender's free list. *)

type pool = {
  mutable free_list : b list;
  mutable created : int;  (* batches ever built by this pool *)
  mutable outstanding : int;  (* allocated and not yet released *)
  mutable high_water : int;
  hw_gauge : Telemetry.gauge;
}

and b = {
  mutable len : int;
  mutable ka : int array;  (* packed word a: src_ip:32 | src_port:16 *)
  mutable kb : int array;  (* packed word b: dst_ip:32 | dst_port:16 | proto:2 *)
  mutable khash : int array;  (* precomputed packed hash *)
  mutable size : int array;  (* wire bytes, precomputed at push *)
  mutable arrival : float array;  (* packet timestamp, seconds *)
  mutable ingress : int array;  (* free slot: ingress port / source id *)
  mutable pkts : Packet.t array;  (* payload slots for the scalar sidecars *)
  mutable dead : Bytes.t;  (* drop marks, swept by [compact] *)
  mutable home : pool option;  (* release target; [None] = GC-owned *)
}

type t = b

let default_capacity = 64

(* Slot filler for unused [pkts] cells, so a released batch retains no
   packet (and its payload) beyond its own lifetime. *)
let dummy_packet =
  lazy
    (Packet.make ~id:(-1) ~ts:Time.zero ~src_ip:(Addr.of_int 0)
       ~dst_ip:(Addr.of_int 0) ~src_port:0 ~dst_port:0 ~proto:Packet.Tcp ())

let make ?(capacity = default_capacity) home =
  let capacity = if capacity < 1 then 1 else capacity in
  {
    len = 0;
    ka = Array.make capacity 0;
    kb = Array.make capacity 0;
    khash = Array.make capacity 0;
    size = Array.make capacity 0;
    arrival = Array.make capacity 0.0;
    ingress = Array.make capacity 0;
    pkts = Array.make capacity (Lazy.force dummy_packet);
    dead = Bytes.make capacity '\000';
    home;
  }

let create ?capacity () = make ?capacity None

let length b = b.len
let capacity b = Array.length b.ka

let grow b =
  let cap = Array.length b.ka in
  let ncap = 2 * cap in
  let gi a = Array.append a (Array.make cap 0) in
  b.ka <- gi b.ka;
  b.kb <- gi b.kb;
  b.khash <- gi b.khash;
  b.size <- gi b.size;
  b.ingress <- gi b.ingress;
  b.arrival <- Array.append b.arrival (Array.make cap 0.0);
  b.pkts <- Array.append b.pkts (Array.make cap (Lazy.force dummy_packet));
  let d = Bytes.make ncap '\000' in
  Bytes.blit b.dead 0 d 0 cap;
  b.dead <- d

(* Fill row [i]'s derived columns from packet [p].  The key words come
   straight off the header fields — no intermediate packed record. *)
let fill b i (p : Packet.t) =
  let pa = Five_tuple.word_a_packet p and pb = Five_tuple.word_b_packet p in
  b.ka.(i) <- pa;
  b.kb.(i) <- pb;
  b.khash.(i) <- Five_tuple.hash_words ~pa ~pb;
  b.size.(i) <- Packet.wire_bytes p;
  b.arrival.(i) <- Time.to_seconds p.ts;
  b.pkts.(i) <- p

let push b p =
  if b.len = Array.length b.ka then grow b;
  let i = b.len in
  fill b i p;
  b.ingress.(i) <- 0;
  Bytes.unsafe_set b.dead i '\000';
  b.len <- i + 1

let get b i = b.pkts.(i)

(* Replace member [i] (a NAT/LB rewrite): the key and size columns are
   re-derived so the next hop classifies the translated packet. *)
let set b i p = fill b i p

let key_a b = b.ka
let key_b b = b.kb
let key_hash b = b.khash
let sizes b = b.size
let arrival b i = Time.seconds b.arrival.(i)
let ingress b i = b.ingress.(i)
let set_ingress b i v = b.ingress.(i) <- v

let total_bytes b =
  let acc = ref 0 in
  for i = 0 to b.len - 1 do
    acc := !acc + Array.unsafe_get b.size i
  done;
  !acc

let drop b i = Bytes.unsafe_set b.dead i '\001'
let is_dropped b i = Bytes.unsafe_get b.dead i <> '\000'

(* Sweep drop-marked members, preserving the order of survivors: the
   in-place compaction pass that keeps per-flow FIFO intact through
   middleboxes that deny/translate per packet.  Returns how many rows
   went. *)
let compact b =
  let n = b.len in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get b.dead i = '\000' then begin
      let w' = !w in
      if w' <> i then begin
        b.ka.(w') <- b.ka.(i);
        b.kb.(w') <- b.kb.(i);
        b.khash.(w') <- b.khash.(i);
        b.size.(w') <- b.size.(i);
        b.arrival.(w') <- b.arrival.(i);
        b.ingress.(w') <- b.ingress.(i);
        b.pkts.(w') <- b.pkts.(i)
      end;
      incr w
    end
  done;
  let kept = !w in
  let dummy = Lazy.force dummy_packet in
  for i = kept to n - 1 do
    b.pkts.(i) <- dummy;
    Bytes.unsafe_set b.dead i '\000'
  done;
  Bytes.fill b.dead 0 kept '\000';
  b.len <- kept;
  n - kept

let clear b =
  let dummy = Lazy.force dummy_packet in
  for i = 0 to b.len - 1 do
    b.pkts.(i) <- dummy
  done;
  Bytes.fill b.dead 0 b.len '\000';
  b.len <- 0

let iter b f =
  for i = 0 to b.len - 1 do
    f b.pkts.(i)
  done

(* ------------------------------------------------------------------ *)
(* Pooling                                                             *)
(* ------------------------------------------------------------------ *)

let pool ?telemetry () =
  let hw_gauge =
    match telemetry with
    | Some tel -> Telemetry.gauge tel "batch.pool_outstanding"
    | None -> Telemetry.null_gauge
  in
  { free_list = []; created = 0; outstanding = 0; high_water = 0; hw_gauge }

let alloc ?capacity p =
  let b =
    match p.free_list with
    | b :: rest ->
      p.free_list <- rest;
      b
    | [] ->
      p.created <- p.created + 1;
      make ?capacity (Some p)
  in
  p.outstanding <- p.outstanding + 1;
  if p.outstanding > p.high_water then p.high_water <- p.outstanding;
  Telemetry.set_gauge p.hw_gauge p.outstanding;
  b

let detach b = b.home <- None

let release b =
  clear b;
  match b.home with
  | None -> ()  (* unpooled or detached (cross-shard): GC reclaims it *)
  | Some p ->
    p.outstanding <- p.outstanding - 1;
    Telemetry.set_gauge p.hw_gauge p.outstanding;
    p.free_list <- b :: p.free_list

let drain b f =
  iter b f;
  release b

let pool_created p = p.created
let pool_outstanding p = p.outstanding
let pool_high_water p = p.high_water

(* ------------------------------------------------------------------ *)
(* Size-or-deadline window builder                                     *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type batch = t

  type nonrec t = {
    src : pool option;
    cap : int;
    window : float;  (* seconds *)
    emit : at:Time.t -> batch -> unit;
    mutable open_ : batch option;
    mutable first_ts : float;
    mutable last_ts : float;
    mutable emitted : int;
  }

  let create ?pool ~size ~window ~emit () =
    if size < 1 then invalid_arg "Packet_batch.Builder.create: size must be >= 1";
    {
      src = pool;
      cap = size;
      window = Time.to_seconds window;
      emit;
      open_ = None;
      first_ts = 0.0;
      last_ts = 0.0;
      emitted = 0;
    }

  let flush_at bld at =
    match bld.open_ with
    | None -> ()
    | Some b ->
      bld.open_ <- None;
      bld.emitted <- bld.emitted + 1;
      bld.emit ~at b

  (* A full batch leaves at the timestamp of the packet that filled it;
     a window-expired batch leaves at its deadline (first ts + window).
     Both are monotone over a time-sorted input stream. *)
  let flush bld = flush_at bld (Time.seconds bld.last_ts)

  let add bld (p : Packet.t) =
    let ts = Time.to_seconds p.ts in
    (match bld.open_ with
    | Some _ when ts > bld.first_ts +. bld.window ->
      flush_at bld (Time.seconds (bld.first_ts +. bld.window))
    | Some _ | None -> ());
    let b =
      match bld.open_ with
      | Some b -> b
      | None ->
        let b =
          match bld.src with
          | Some p -> alloc ~capacity:bld.cap p
          | None -> make ~capacity:bld.cap None
        in
        bld.open_ <- Some b;
        bld.first_ts <- ts;
        b
    in
    push b p;
    bld.last_ts <- ts;
    if length b >= bld.cap then flush_at bld (Time.seconds ts)

  let batches_emitted bld = bld.emitted
end
