(** Structure-of-arrays packet vector: the unit of the batch data path.

    A batch carries up to a window's worth of packets as parallel
    columns — the two packed five-tuple key words ({!Five_tuple.packed_pa}
    / {!Five_tuple.packed_pb}), the precomputed key hash, wire size,
    arrival timestamp and an ingress slot — plus a payload slot array of
    the {!Packet.t} records themselves.  Vectorized passes (flow-table
    classification, NAT/monitor/firewall fast paths) run over the flat
    int columns; anything that needs the full packet (wildcard rule
    scans, state-table updates, controller punts) falls out to a scalar
    sidecar via {!get}.

    Batches are pooled and reused like the engine's pooled event cells:
    steady-state batch flow allocates nothing.  Ownership convention:
    {e the receiver of a batch owns it} and must either {!release} it or
    forward it onward.  Before posting a batch to another shard,
    {!detach} it — pools are single-domain. *)

open Openmb_sim

type t
(** A mutable, growable packet batch. *)

type pool
(** A free list of batches (single-domain; not thread-safe). *)

(** {2 Construction} *)

val create : ?capacity:int -> unit -> t
(** An unpooled batch (GC-owned; {!release} just clears it).  The
    default capacity is 64; batches grow by doubling. *)

val pool : ?telemetry:Telemetry.t -> unit -> pool
(** A batch pool.  With [?telemetry], the number of outstanding batches
    feeds the ["batch.pool_outstanding"] gauge (whose peak is the
    pool high-water mark). *)

val alloc : ?capacity:int -> pool -> t
(** Take a cleared batch from the pool's free list, or build a fresh one
    ([capacity] applies only when building). *)

val release : t -> unit
(** Clear the batch (dropping all packet references) and return it to
    its home pool.  No-op beyond the clear for unpooled or {!detach}ed
    batches. *)

val detach : t -> unit
(** Unlink the batch from its home pool, transferring ownership to the
    GC.  Required before a cross-shard post: the receiving shard's
    {!release} must not touch the sending shard's free list. *)

(** {2 Member access} *)

val length : t -> int
val capacity : t -> int

val push : t -> Packet.t -> unit
(** Append a packet, filling every column (packs the five-tuple,
    precomputes the hash and wire size). *)

val get : t -> int -> Packet.t
(** The full packet record of member [i] — the scalar-sidecar escape
    hatch. *)

val set : t -> int -> Packet.t -> unit
(** Replace member [i] with a rewritten packet (NAT translation, load
    balancer redirect), re-deriving its key and size columns so the next
    hop classifies the new header. *)

val key_a : t -> int array
(** First packed key words, [src_ip:32 | src_port:16]; valid indices are
    [0 .. length - 1].  The arrays returned by {!key_a}/{!key_b}/
    {!key_hash}/{!sizes} are the batch's own columns — they are
    invalidated by {!push} (growth) and rewritten by {!compact}. *)

val key_b : t -> int array
(** Second packed key words, [dst_ip:32 | dst_port:16 | proto:2]. *)

val key_hash : t -> int array
(** Precomputed packed-key hashes. *)

val sizes : t -> int array
(** Wire sizes in bytes. *)

val arrival : t -> int -> Time.t
(** Timestamp of member [i]. *)

val ingress : t -> int -> int
val set_ingress : t -> int -> int -> unit
(** A free per-member int slot (ingress port, source id). *)

val total_bytes : t -> int
(** Sum of the size column: the batch's wire footprint when it crosses a
    link as a single message. *)

(** {2 Drops and compaction} *)

val drop : t -> int -> unit
(** Mark member [i] dropped; it stays in place until {!compact}. *)

val is_dropped : t -> int -> bool

val compact : t -> int
(** Remove drop-marked members in place, preserving the relative order
    of survivors (per-flow FIFO is maintained).  Returns the number of
    members removed. *)

val clear : t -> unit
(** Empty the batch, dropping all packet references. *)

val iter : t -> (Packet.t -> unit) -> unit
(** Apply to each live member in order. *)

val drain : t -> (Packet.t -> unit) -> unit
(** [iter] then {!release}: hand each member to a scalar consumer and
    retire the batch. *)

(** {2 Pool statistics} *)

val pool_created : pool -> int
val pool_outstanding : pool -> int
val pool_high_water : pool -> int

(** {2 Size-or-deadline batching window} *)

module Builder : sig
  (** Accumulates a time-sorted packet stream into batches, emitting
      each batch when it reaches [size] members or when the next packet
      would land past the [window] deadline (first member's timestamp +
      [window]) — whichever comes first.  A full batch is emitted at the
      timestamp of the packet that filled it; a window-expired batch at
      its deadline.  Both are monotone over a sorted input. *)

  type batch := t
  type t

  val create :
    ?pool:pool ->
    size:int ->
    window:Time.t ->
    emit:(at:Time.t -> batch -> unit) ->
    unit ->
    t
  (** [emit ~at b] receives ownership of [b]; with [?pool], batches are
      drawn from (and should be released back to) that pool. *)

  val add : t -> Packet.t -> unit
  (** Feed the next packet (timestamps must be non-decreasing). *)

  val flush : t -> unit
  (** Emit the open batch, if any, at its last member's timestamp.  Call
      at end of stream. *)

  val batches_emitted : t -> int
end
