(** Header-field lists: the paper's [<HeaderFieldList>] abstraction.

    A header-field list (HFL) is a conjunction of constraints over
    packet header dimensions.  It is the key used throughout OpenMB to
    identify per-flow state ([getSupportPerflow(hfl)]), to scope
    network routing updates, and to name moved state in events.

    A middlebox keys its per-flow state at a particular {e granularity}
    — the set of dimensions its internal keys distinguish (e.g. the
    Balance load balancer keys only on source IP and port).  Requests
    coarser than the granularity return all matching fine-grained
    chunks; requests finer than it are errors (§4.1.2). *)

type dim = Dim_src_ip | Dim_dst_ip | Dim_src_port | Dim_dst_port | Dim_proto
(** One header dimension. *)

type field =
  | Src_ip of Addr.prefix
  | Dst_ip of Addr.prefix
  | Src_port of int
  | Dst_port of int
  | Proto of Packet.proto
      (** One constraint.  IP constraints are CIDR prefixes; port and
          protocol constraints are exact. *)

type t = field list
(** A conjunction of constraints.  The empty list matches everything
    (the paper's [moveInternal(Prads2, Prads1, [])] uses this to move
    all flows). *)

type granularity = dim list
(** The set of dimensions a middlebox keys per-flow state on. *)

val any : t
(** Matches all traffic. *)

val full_granularity : granularity
(** All five dimensions — the granularity of five-tuple-keyed MBs. *)

val dim_of_field : field -> dim
(** Dimension a field constrains. *)

val matches_tuple : t -> Five_tuple.t -> bool
(** [matches_tuple hfl tup] is [true] iff [tup] satisfies every
    constraint. *)

val matches_packet : t -> Packet.t -> bool
(** [matches_packet hfl p] is [matches_tuple hfl (Five_tuple.of_packet p)]. *)

val matches_bidir : t -> Five_tuple.t -> bool
(** Like {!matches_tuple} but also true when the reversed tuple
    matches; used by MBs whose state is connection-oriented. *)

val subsumes : t -> t -> bool
(** [subsumes a b] is [true] iff every tuple matching [b] also matches
    [a] (i.e. [a] is coarser than or equal to [b]).  Sound and complete
    for constraint lists without duplicate dimensions. *)

val well_formed : t -> bool
(** No two constraints on the same dimension. *)

val compatible_with_granularity : t -> granularity -> bool
(** [compatible_with_granularity hfl g] is [true] iff [hfl] only
    constrains dimensions in [g] — i.e. the request is not finer than
    the MB's state granularity. *)

val key_of_tuple : granularity -> Five_tuple.t -> t
(** [key_of_tuple g tup] projects [tup] onto the dimensions of [g],
    yielding the exact-match HFL that names the state chunk for that
    flow at that MB. *)

val to_tuple : t -> Five_tuple.t option
(** [to_tuple hfl] is the five-tuple [hfl] pins exactly — [Some tup]
    iff [hfl] constrains all five dimensions, each to a single value
    (/32 IP prefixes, one port, one protocol; no duplicate
    dimensions).  Inverse of [key_of_tuple full_granularity], up to
    constraint order. *)

val field_compare : field -> field -> int
(** Total order on constraints: dimension first, then value.  Sorting
    by it yields the canonical form used by {!equal}. *)

val equal : t -> t -> bool
(** Equality up to constraint order. *)

val to_string : t -> string
(** OpenFlow-style rendering, e.g.
    ["nw_src=1.1.1.0/24,tp_dst=80"]; [""] for {!any}. *)

val of_string : string -> t
(** Inverse of {!to_string}.  Raises [Invalid_argument] on malformed
    input. *)

val pp : Format.formatter -> t -> unit
