open Openmb_sim

type t = {
  engine : Engine.t;
  install_delay : Time.t;
  switches : (string, Switch.t) Hashtbl.t;
  mutable ops : int;
}

let create engine ?(install_delay = Time.ms 10.0) () =
  { engine; install_delay; switches = Hashtbl.create 4; ops = 0 }

let register_switch t sw =
  Hashtbl.replace t.switches (Switch.name sw) sw;
  (* Proactive-rule scenarios: misses are silently dropped but counted
     by the switch itself. *)
  Switch.on_miss sw (fun _ -> ())

let find_switch t name =
  match Hashtbl.find_opt t.switches name with
  | Some sw -> sw
  | None -> failwith (Printf.sprintf "Sdn_controller: unknown switch %s" name)

let install_rule t ~switch ~priority ~match_ ~action ?on_done () =
  let sw = find_switch t switch in
  t.ops <- t.ops + 1;
  Engine.call_after t.engine t.install_delay
    (fun () ->
      ignore (Flow_table.install (Switch.table sw) ~priority ~match_ ~action);
      match on_done with Some f -> f () | None -> ())
    ()

let remove_rules t ~switch ~match_ ?on_done () =
  let sw = find_switch t switch in
  t.ops <- t.ops + 1;
  Engine.call_after t.engine t.install_delay
    (fun () ->
      ignore (Flow_table.remove_matching (Switch.table sw) match_);
      match on_done with Some f -> f () | None -> ())
    ()

let update_route t ~switch ~match_ ~new_action ?(priority = 100) ?on_done () =
  let sw = find_switch t switch in
  t.ops <- t.ops + 1;
  Engine.call_after t.engine t.install_delay
    (fun () ->
      let table = Switch.table sw in
      ignore (Flow_table.remove_matching table match_);
      ignore (Flow_table.install table ~priority ~match_ ~action:new_action);
      match on_done with Some f -> f () | None -> ())
    ()

let rule_operations t = t.ops
