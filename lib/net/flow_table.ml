type action = Forward of string | Drop | To_controller

type rule = {
  cookie : int;
  priority : int;
  match_ : Hfl.t;
  action : action;
  mutable packets : int;
  mutable bytes : int;
}

let rule_order a b =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c else Int.compare a.cookie b.cookie

let proto_code = function Packet.Tcp -> 0 | Packet.Udp -> 1 | Packet.Icmp -> 2

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

(* Wildcard rules compiled to struct-of-arrays integer mask/value rows,
   sorted like the old rule list (descending priority, then ascending
   cookie) so the first matching row wins.  The scan does no list
   walking, closure calls or tuple allocation; ports/proto use [-1] as
   the wildcard sentinel.  Rows whose HFL constrains a dimension twice
   cannot be expressed as one mask/value pair and fall back to the
   generic matcher ([generic] flag). *)
type wildset = {
  wrules : rule array;
  wprio : int array;
  wsmask : int array;
  wsbase : int array;
  wdmask : int array;
  wdbase : int array;
  wsport : int array;
  wdport : int array;
  wproto : int array;
  wgeneric : bool array;
}

let empty_wildset =
  {
    wrules = [||];
    wprio = [||];
    wsmask = [||];
    wsbase = [||];
    wdmask = [||];
    wdbase = [||];
    wsport = [||];
    wdport = [||];
    wproto = [||];
    wgeneric = [||];
  }

let compile_wildset rules =
  let rules = Array.of_list (List.sort rule_order rules) in
  let n = Array.length rules in
  let w =
    {
      wrules = rules;
      wprio = Array.make n 0;
      wsmask = Array.make n 0;
      wsbase = Array.make n 0;
      wdmask = Array.make n 0;
      wdbase = Array.make n 0;
      wsport = Array.make n (-1);
      wdport = Array.make n (-1);
      wproto = Array.make n (-1);
      wgeneric = Array.make n false;
    }
  in
  Array.iteri
    (fun i r ->
      w.wprio.(i) <- r.priority;
      let seen_s = ref false and seen_d = ref false in
      let ok = ref true in
      List.iter
        (fun f ->
          match f with
          | Hfl.Src_ip p ->
            if !seen_s then ok := false
            else begin
              seen_s := true;
              w.wsmask.(i) <- mask_of_len (Addr.prefix_len p);
              w.wsbase.(i) <- Addr.to_int (Addr.prefix_base p)
            end
          | Hfl.Dst_ip p ->
            if !seen_d then ok := false
            else begin
              seen_d := true;
              w.wdmask.(i) <- mask_of_len (Addr.prefix_len p);
              w.wdbase.(i) <- Addr.to_int (Addr.prefix_base p)
            end
          | Hfl.Src_port v ->
            if w.wsport.(i) >= 0 then ok := false else w.wsport.(i) <- v
          | Hfl.Dst_port v ->
            if w.wdport.(i) >= 0 then ok := false else w.wdport.(i) <- v
          | Hfl.Proto v ->
            if w.wproto.(i) >= 0 then ok := false else w.wproto.(i) <- proto_code v)
        r.match_;
      if not !ok then w.wgeneric.(i) <- true)
    rules;
  w

type t = {
  (* Full-five-tuple rules, probed by packed key in O(1).  Each list is
     kept in [rule_order] so the head is the winning candidate; a list
     longer than one holds identical duplicate matches at different
     priorities or install times. *)
  exact : rule list Five_tuple.Packed_table.t;
  mutable exact_count : int;
  mutable wild : wildset;
  mutable next_cookie : int;
}

let create () =
  {
    exact = Five_tuple.Packed_table.create 64;
    exact_count = 0;
    wild = empty_wildset;
    next_cookie = 0;
  }

let install t ~priority ~match_ ~action =
  let rule = { cookie = t.next_cookie; priority; match_; action; packets = 0; bytes = 0 } in
  t.next_cookie <- t.next_cookie + 1;
  (match Hfl.to_tuple match_ with
  | Some tup ->
    let k = Five_tuple.pack tup in
    let existing =
      match Five_tuple.Packed_table.find_opt t.exact k with Some rs -> rs | None -> []
    in
    Five_tuple.Packed_table.replace t.exact k (List.sort rule_order (rule :: existing));
    t.exact_count <- t.exact_count + 1
  | None -> t.wild <- compile_wildset (rule :: Array.to_list t.wild.wrules));
  rule

(* Remove every rule rejected by [keep]; returns how many went. *)
let filter_rules t keep =
  let removed = ref 0 in
  let victims =
    Five_tuple.Packed_table.fold
      (fun k rs acc -> if List.for_all keep rs then acc else (k, rs) :: acc)
      t.exact []
  in
  List.iter
    (fun (k, rs) ->
      let rs' = List.filter keep rs in
      removed := !removed + (List.length rs - List.length rs');
      match rs' with
      | [] -> Five_tuple.Packed_table.remove t.exact k
      | rs' -> Five_tuple.Packed_table.replace t.exact k rs')
    victims;
  t.exact_count <- t.exact_count - !removed;
  if not (Array.for_all (fun r -> keep r) t.wild.wrules) then begin
    let kept = List.filter keep (Array.to_list t.wild.wrules) in
    removed := !removed + (Array.length t.wild.wrules - List.length kept);
    t.wild <- compile_wildset kept
  end;
  !removed

let remove t ~cookie = filter_rules t (fun r -> r.cookie <> cookie) > 0

let remove_matching t hfl = filter_rules t (fun r -> not (Hfl.equal r.match_ hfl))

let lookup t p =
  let exact_hit =
    if t.exact_count = 0 then None
    else
      match Five_tuple.Packed_table.find_opt t.exact (Five_tuple.pack_packet p) with
      | Some (r :: _) -> Some r
      | Some [] | None -> None
  in
  let w = t.wild in
  let n = Array.length w.wrules in
  let src = Addr.to_int p.src_ip and dst = Addr.to_int p.dst_ip in
  let sp = p.src_port and dp = p.dst_port in
  let pr = proto_code p.proto in
  (* Rows below the exact candidate's priority cannot win: the scan
     stops there (ties still need the cookie comparison below). *)
  let cutoff = match exact_hit with Some re -> re.priority | None -> min_int in
  let rec scan j =
    if j >= n || Array.unsafe_get w.wprio j < cutoff then None
    else
      let matched =
        if Array.unsafe_get w.wgeneric j then
          Hfl.matches_packet (Array.unsafe_get w.wrules j).match_ p
        else
          src land Array.unsafe_get w.wsmask j = Array.unsafe_get w.wsbase j
          && dst land Array.unsafe_get w.wdmask j = Array.unsafe_get w.wdbase j
          && (let x = Array.unsafe_get w.wsport j in
              x < 0 || x = sp)
          && (let x = Array.unsafe_get w.wdport j in
              x < 0 || x = dp)
          &&
          let x = Array.unsafe_get w.wproto j in
          x < 0 || x = pr
      in
      if matched then Some (Array.unsafe_get w.wrules j) else scan (j + 1)
  in
  let hit =
    match (exact_hit, scan 0) with
    | Some a, Some b -> if rule_order a b <= 0 then Some a else Some b
    | (Some _ as h), None | None, (Some _ as h) -> h
    | None, None -> None
  in
  match hit with
  | Some r ->
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + Packet.wire_bytes p;
    Some r.action
  | None -> None

let rules t =
  let exact = Five_tuple.Packed_table.fold (fun _ rs acc -> rs @ acc) t.exact [] in
  List.sort rule_order (exact @ Array.to_list t.wild.wrules)

let size t = t.exact_count + Array.length t.wild.wrules
