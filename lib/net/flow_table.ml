type action = Forward of string | Drop | To_controller

type rule = {
  cookie : int;
  priority : int;
  match_ : Hfl.t;
  action : action;
  mutable packets : int;
  mutable bytes : int;
}

let rule_order a b =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c else Int.compare a.cookie b.cookie

let proto_code = function Packet.Tcp -> 0 | Packet.Udp -> 1 | Packet.Icmp -> 2

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

(* Wildcard rules compiled to struct-of-arrays integer mask/value rows,
   sorted like the old rule list (descending priority, then ascending
   cookie) so the first matching row wins.  The scan does no list
   walking, closure calls or tuple allocation; ports/proto use [-1] as
   the wildcard sentinel.  Rows whose HFL constrains a dimension twice
   cannot be expressed as one mask/value pair and fall back to the
   generic matcher ([generic] flag). *)
type wildset = {
  wrules : rule array;
  wprio : int array;
  wsmask : int array;
  wsbase : int array;
  wdmask : int array;
  wdbase : int array;
  wsport : int array;
  wdport : int array;
  wproto : int array;
  wgeneric : bool array;
}

let empty_wildset =
  {
    wrules = [||];
    wprio = [||];
    wsmask = [||];
    wsbase = [||];
    wdmask = [||];
    wdbase = [||];
    wsport = [||];
    wdport = [||];
    wproto = [||];
    wgeneric = [||];
  }

let compile_wildset rules =
  let rules = Array.of_list (List.sort rule_order rules) in
  let n = Array.length rules in
  let w =
    {
      wrules = rules;
      wprio = Array.make n 0;
      wsmask = Array.make n 0;
      wsbase = Array.make n 0;
      wdmask = Array.make n 0;
      wdbase = Array.make n 0;
      wsport = Array.make n (-1);
      wdport = Array.make n (-1);
      wproto = Array.make n (-1);
      wgeneric = Array.make n false;
    }
  in
  Array.iteri
    (fun i r ->
      w.wprio.(i) <- r.priority;
      let seen_s = ref false and seen_d = ref false in
      let ok = ref true in
      List.iter
        (fun f ->
          match f with
          | Hfl.Src_ip p ->
            if !seen_s then ok := false
            else begin
              seen_s := true;
              w.wsmask.(i) <- mask_of_len (Addr.prefix_len p);
              w.wsbase.(i) <- Addr.to_int (Addr.prefix_base p)
            end
          | Hfl.Dst_ip p ->
            if !seen_d then ok := false
            else begin
              seen_d := true;
              w.wdmask.(i) <- mask_of_len (Addr.prefix_len p);
              w.wdbase.(i) <- Addr.to_int (Addr.prefix_base p)
            end
          | Hfl.Src_port v ->
            if w.wsport.(i) >= 0 then ok := false else w.wsport.(i) <- v
          | Hfl.Dst_port v ->
            if w.wdport.(i) >= 0 then ok := false else w.wdport.(i) <- v
          | Hfl.Proto v ->
            if w.wproto.(i) >= 0 then ok := false else w.wproto.(i) <- proto_code v)
        r.match_;
      if not !ok then w.wgeneric.(i) <- true)
    rules;
  w

type t = {
  (* Full-five-tuple rules, probed by packed key words in O(1) through
     the flat open-addressing core ({!Flat_table}).  Each list is kept
     in [rule_order] so the head is the winning candidate; a list
     longer than one holds identical duplicate matches at different
     priorities or install times. *)
  exact : rule list Flat_table.t;
  mutable exact_count : int;
  mutable wild : wildset;
  mutable next_cookie : int;
}

let create () =
  {
    exact = Flat_table.create ~capacity:64 ();
    exact_count = 0;
    wild = empty_wildset;
    next_cookie = 0;
  }

let install t ~priority ~match_ ~action =
  let rule = { cookie = t.next_cookie; priority; match_; action; packets = 0; bytes = 0 } in
  t.next_cookie <- t.next_cookie + 1;
  (match Hfl.to_tuple match_ with
  | Some tup ->
    let pa = Five_tuple.word_a tup and pb = Five_tuple.word_b tup in
    let h = Five_tuple.hash_words ~pa ~pb in
    let existing =
      match Flat_table.find t.exact ~pa ~pb ~h with Some rs -> rs | None -> []
    in
    Flat_table.replace t.exact ~pa ~pb ~h (List.sort rule_order (rule :: existing));
    t.exact_count <- t.exact_count + 1
  | None -> t.wild <- compile_wildset (rule :: Array.to_list t.wild.wrules));
  rule

(* Remove every rule rejected by [keep]; returns how many went. *)
let filter_rules t keep =
  let removed = ref 0 in
  let victims = ref [] in
  Flat_table.iter t.exact (fun ~pa ~pb rs ->
      if not (List.for_all keep rs) then victims := (pa, pb, rs) :: !victims);
  List.iter
    (fun (pa, pb, rs) ->
      let h = Five_tuple.hash_words ~pa ~pb in
      let rs' = List.filter keep rs in
      removed := !removed + (List.length rs - List.length rs');
      match rs' with
      | [] -> ignore (Flat_table.remove t.exact ~pa ~pb ~h : bool)
      | rs' -> Flat_table.replace t.exact ~pa ~pb ~h rs')
    !victims;
  t.exact_count <- t.exact_count - !removed;
  if not (Array.for_all (fun r -> keep r) t.wild.wrules) then begin
    let kept = List.filter keep (Array.to_list t.wild.wrules) in
    removed := !removed + (Array.length t.wild.wrules - List.length kept);
    t.wild <- compile_wildset kept
  end;
  !removed

let remove t ~cookie = filter_rules t (fun r -> r.cookie <> cookie) > 0

let remove_matching t hfl = filter_rules t (fun r -> not (Hfl.equal r.match_ hfl))

(* Scan the wildcard rows against one packet's header ints.  Rows below
   [cutoff] (the exact candidate's priority) cannot win, so the scan
   stops there (ties still need the cookie comparison in [combine]).
   Generic rows — HFLs inexpressible as one mask/value per dimension —
   need the full packet record, obtained via [pkt_of x]: the scalar path
   passes the packet itself, the batch path the member's payload-slot
   accessor. *)
let scan_wild w ~src ~sp ~dst ~dp ~pr ~cutoff pkt_of x =
  let n = Array.length w.wrules in
  let rec scan j =
    if j >= n || Array.unsafe_get w.wprio j < cutoff then None
    else
      let matched =
        if Array.unsafe_get w.wgeneric j then
          Hfl.matches_packet (Array.unsafe_get w.wrules j).match_ (pkt_of x)
        else
          src land Array.unsafe_get w.wsmask j = Array.unsafe_get w.wsbase j
          && dst land Array.unsafe_get w.wdmask j = Array.unsafe_get w.wdbase j
          && (let x = Array.unsafe_get w.wsport j in
              x < 0 || x = sp)
          && (let x = Array.unsafe_get w.wdport j in
              x < 0 || x = dp)
          &&
          let x = Array.unsafe_get w.wproto j in
          x < 0 || x = pr
      in
      if matched then Some (Array.unsafe_get w.wrules j) else scan (j + 1)
  in
  scan 0

let combine exact_hit wild_hit =
  match (exact_hit, wild_hit) with
  | Some a, Some b -> if rule_order a b <= 0 then Some a else Some b
  | (Some _ as h), None | None, (Some _ as h) -> h
  | None, None -> None

let exact_probe t ~pa ~pb ~h =
  match Flat_table.find t.exact ~pa ~pb ~h with
  | Some (r :: _) -> Some r
  | Some [] | None -> None

let lookup t p =
  let exact_hit =
    if t.exact_count = 0 then None
    else
      let tup = Five_tuple.of_packet p in
      let pa = Five_tuple.word_a tup and pb = Five_tuple.word_b tup in
      exact_probe t ~pa ~pb ~h:(Five_tuple.hash_words ~pa ~pb)
  in
  let wild_hit =
    if Array.length t.wild.wrules = 0 then None
    else
      let cutoff = match exact_hit with Some re -> re.priority | None -> min_int in
      scan_wild t.wild ~src:(Addr.to_int p.src_ip) ~sp:p.src_port
        ~dst:(Addr.to_int p.dst_ip) ~dp:p.dst_port ~pr:(proto_code p.proto)
        ~cutoff
        (fun (p : Packet.t) -> p)
        p
  in
  match combine exact_hit wild_hit with
  | Some r ->
    r.packets <- r.packets + 1;
    r.bytes <- r.bytes + Packet.wire_bytes p;
    Some r.action
  | None -> None

(* One classification pass over a whole batch, filling [actions.(i)] for
   each member.  The exact fast path probes straight from the batch's
   packed-key word columns — no [Packet.t] is touched when the table has
   no wildcard rules.  With wildcard rules present, the header ints for
   the scan are still decoded from the key words; only generic rows fall
   out to the member's payload slot. *)
let lookup_batch t b actions =
  let n = Packet_batch.length b in
  if Array.length actions < n then
    invalid_arg "Flow_table.lookup_batch: actions array too small";
  let ka = Packet_batch.key_a b and kb = Packet_batch.key_b b in
  let kh = Packet_batch.key_hash b in
  let sizes = Packet_batch.sizes b in
  let have_exact = t.exact_count > 0 in
  let w = t.wild in
  let nw = Array.length w.wrules in
  let getp i = Packet_batch.get b i in
  for i = 0 to n - 1 do
    let pa = Array.unsafe_get ka i and pb = Array.unsafe_get kb i in
    let exact_hit =
      if not have_exact then None
      else exact_probe t ~pa ~pb ~h:(Array.unsafe_get kh i)
    in
    let hit =
      if nw = 0 then exact_hit
      else begin
        let cutoff =
          match exact_hit with Some re -> re.priority | None -> min_int
        in
        let wild_hit =
          scan_wild w ~src:(pa lsr 16) ~sp:(pa land 0xFFFF) ~dst:(pb lsr 18)
            ~dp:((pb lsr 2) land 0xFFFF) ~pr:(pb land 3) ~cutoff getp i
        in
        combine exact_hit wild_hit
      end
    in
    match hit with
    | Some r ->
      r.packets <- r.packets + 1;
      r.bytes <- r.bytes + Array.unsafe_get sizes i;
      Array.unsafe_set actions i (Some r.action)
    | None -> Array.unsafe_set actions i None
  done

let rules t =
  let exact = Flat_table.fold t.exact ~init:[] ~f:(fun acc rs -> rs @ acc) in
  List.sort rule_order (exact @ Array.to_list t.wild.wrules)

let size t = t.exact_count + Array.length t.wild.wrules
