type dim = Dim_src_ip | Dim_dst_ip | Dim_src_port | Dim_dst_port | Dim_proto

type field =
  | Src_ip of Addr.prefix
  | Dst_ip of Addr.prefix
  | Src_port of int
  | Dst_port of int
  | Proto of Packet.proto

type t = field list

type granularity = dim list

let any = []
let full_granularity = [ Dim_src_ip; Dim_dst_ip; Dim_src_port; Dim_dst_port; Dim_proto ]

let dim_of_field = function
  | Src_ip _ -> Dim_src_ip
  | Dst_ip _ -> Dim_dst_ip
  | Src_port _ -> Dim_src_port
  | Dst_port _ -> Dim_dst_port
  | Proto _ -> Dim_proto

let field_matches (tup : Five_tuple.t) = function
  | Src_ip p -> Addr.in_prefix tup.src_ip p
  | Dst_ip p -> Addr.in_prefix tup.dst_ip p
  | Src_port port -> tup.src_port = port
  | Dst_port port -> tup.dst_port = port
  | Proto proto -> tup.proto = proto

let matches_tuple hfl tup = List.for_all (field_matches tup) hfl

let field_matches_packet (p : Packet.t) = function
  | Src_ip pre -> Addr.in_prefix p.src_ip pre
  | Dst_ip pre -> Addr.in_prefix p.dst_ip pre
  | Src_port port -> p.src_port = port
  | Dst_port port -> p.dst_port = port
  | Proto proto -> p.proto = proto

(* Equivalent to [matches_tuple hfl (Five_tuple.of_packet p)] but reads
   the packet's header fields directly: the packet path calls this per
   rule, and the tuple record + closure it used to build per call was
   pure garbage. *)
let rec matches_packet hfl p =
  match hfl with
  | [] -> true
  | f :: rest -> field_matches_packet p f && matches_packet rest p

let matches_bidir hfl tup =
  matches_tuple hfl tup || matches_tuple hfl (Five_tuple.reverse tup)

(* [a] subsumes [b] iff every constraint of [a] is implied by some
   constraint of [b] on the same dimension. *)
let field_subsumes fa fb =
  match (fa, fb) with
  | Src_ip pa, Src_ip pb | Dst_ip pa, Dst_ip pb -> Addr.prefix_subsumes pa pb
  | Src_port a, Src_port b | Dst_port a, Dst_port b -> a = b
  | Proto a, Proto b -> a = b
  | (Src_ip _ | Dst_ip _ | Src_port _ | Dst_port _ | Proto _), _ -> false

let subsumes a b =
  List.for_all (fun fa -> List.exists (fun fb -> field_subsumes fa fb) b) a

let well_formed hfl =
  let dims = List.map dim_of_field hfl in
  List.length (List.sort_uniq Stdlib.compare dims) = List.length dims

let compatible_with_granularity hfl g =
  List.for_all (fun f -> List.mem (dim_of_field f) g) hfl

(* Inverse of [key_of_tuple full_granularity]: the tuple an HFL pins
   exactly, when it constrains every dimension to a single value. *)
let to_tuple hfl =
  let src = ref (-1) and dst = ref (-1) in
  let sport = ref (-1) and dport = ref (-1) in
  let proto = ref None in
  let exact = ref true in
  List.iter
    (fun f ->
      match f with
      | Src_ip p ->
        if Addr.prefix_len p = 32 && !src < 0 then src := Addr.to_int (Addr.prefix_base p)
        else exact := false
      | Dst_ip p ->
        if Addr.prefix_len p = 32 && !dst < 0 then dst := Addr.to_int (Addr.prefix_base p)
        else exact := false
      | Src_port v -> if !sport < 0 then sport := v else exact := false
      | Dst_port v -> if !dport < 0 then dport := v else exact := false
      | Proto v -> (
        match !proto with None -> proto := Some v | Some _ -> exact := false))
    hfl;
  match !proto with
  | Some proto when !exact && !src >= 0 && !dst >= 0 && !sport >= 0 && !dport >= 0 ->
    Some
      {
        Five_tuple.src_ip = Addr.of_int !src;
        dst_ip = Addr.of_int !dst;
        src_port = !sport;
        dst_port = !dport;
        proto;
      }
  | Some _ | None -> None

let key_of_tuple g (tup : Five_tuple.t) =
  List.filter_map
    (fun d ->
      match d with
      | Dim_src_ip -> Some (Src_ip (Addr.prefix tup.src_ip 32))
      | Dim_dst_ip -> Some (Dst_ip (Addr.prefix tup.dst_ip 32))
      | Dim_src_port -> Some (Src_port tup.src_port)
      | Dim_dst_port -> Some (Dst_port tup.dst_port)
      | Dim_proto -> Some (Proto tup.proto))
    g

let field_to_string = function
  | Src_ip p -> "nw_src=" ^ Addr.prefix_to_string p
  | Dst_ip p -> "nw_dst=" ^ Addr.prefix_to_string p
  | Src_port p -> "tp_src=" ^ string_of_int p
  | Dst_port p -> "tp_dst=" ^ string_of_int p
  | Proto p -> "proto=" ^ Packet.proto_to_string p

let to_string hfl = String.concat "," (List.map field_to_string hfl)

let field_of_string s =
  match String.index_opt s '=' with
  | None -> invalid_arg (Printf.sprintf "Hfl.of_string: missing '=' in %S" s)
  | Some i ->
    let key = String.sub s 0 i in
    let value = String.sub s (i + 1) (String.length s - i - 1) in
    (match key with
    | "nw_src" -> Src_ip (Addr.prefix_of_string value)
    | "nw_dst" -> Dst_ip (Addr.prefix_of_string value)
    | "tp_src" -> Src_port (int_of_string value)
    | "tp_dst" -> Dst_port (int_of_string value)
    | "proto" -> Proto (Packet.proto_of_string value)
    | _ -> invalid_arg (Printf.sprintf "Hfl.of_string: unknown field %S" key))

let of_string s =
  if String.length s = 0 then []
  else List.map field_of_string (String.split_on_char ',' s)

let field_equal a b =
  match (a, b) with
  | Src_ip p, Src_ip q | Dst_ip p, Dst_ip q -> Addr.prefix_equal p q
  | Src_port p, Src_port q | Dst_port p, Dst_port q -> p = q
  | Proto p, Proto q -> p = q
  | (Src_ip _ | Dst_ip _ | Src_port _ | Dst_port _ | Proto _), _ -> false

let dim_rank = function
  | Dim_src_ip -> 0
  | Dim_dst_ip -> 1
  | Dim_src_port -> 2
  | Dim_dst_port -> 3
  | Dim_proto -> 4

(* Total order on fields: by dimension, then by value — the canonical
   order used to compare constraint lists. *)
let field_compare a b =
  let c = Int.compare (dim_rank (dim_of_field a)) (dim_rank (dim_of_field b)) in
  if c <> 0 then c
  else
    match (a, b) with
    | Src_ip p, Src_ip q | Dst_ip p, Dst_ip q ->
      let c = Int.compare (Addr.to_int (Addr.prefix_base p)) (Addr.to_int (Addr.prefix_base q)) in
      if c <> 0 then c else Int.compare (Addr.prefix_len p) (Addr.prefix_len q)
    | Src_port p, Src_port q | Dst_port p, Dst_port q -> Int.compare p q
    | Proto p, Proto q -> Stdlib.compare p q
    | (Src_ip _ | Dst_ip _ | Src_port _ | Dst_port _ | Proto _), _ -> 0 (* same dim *)

(* Equality up to constraint order, via canonical sorting.  (Mutual
   existence checks are not enough: [A;A] would equal [A;B].) *)
let equal a b =
  a == b
  || List.length a = List.length b
     && List.equal field_equal (List.sort field_compare a) (List.sort field_compare b)

let pp fmt hfl =
  if hfl = [] then Format.pp_print_string fmt "<any>"
  else Format.pp_print_string fmt (to_string hfl)
