open Openmb_sim

type t = {
  shards : int;
  routes : Shard.route array array; (* routes.(src).(dst) *)
  placed : int array;
}

let create se =
  let shards = Sharded_engine.shards se in
  let routes =
    Array.init shards (fun src ->
        let s = Sharded_engine.shard se src in
        Array.init shards (fun dst -> Shard.route_to s ~dst))
  in
  { shards; routes; placed = Array.make shards 0 }

let shards t = t.shards
let owner t k = Five_tuple.packed_canonical_hash k mod t.shards
let owner_tuple t tuple = owner t (Five_tuple.pack tuple)

let place t k =
  let o = owner t k in
  t.placed.(o) <- t.placed.(o) + 1;
  o

let route t ~src ~dst = t.routes.(src).(dst)

let deliver t ~src ~key ~at f x =
  let r = t.routes.(src).(owner t key) in
  r.Shard.route ~at f x

let placements t = Array.copy t.placed

let skew t =
  let total = Array.fold_left ( + ) 0 t.placed in
  if total = 0 then Float.nan
  else
    let mean = float_of_int total /. float_of_int t.shards in
    let mx = Array.fold_left max 0 t.placed in
    float_of_int mx /. mean
