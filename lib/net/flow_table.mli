(** Prioritized wildcard flow table, as installed in OpenFlow
    switches. *)

type action =
  | Forward of string  (** Output on the named port. *)
  | Drop
  | To_controller  (** Punt to the SDN controller. *)

type rule = {
  cookie : int;  (** Unique id assigned at install time. *)
  priority : int;  (** Higher wins. *)
  match_ : Hfl.t;
  action : action;
  mutable packets : int;  (** Packets matched so far. *)
  mutable bytes : int;  (** Bytes matched so far. *)
}

type t
(** A mutable flow table. *)

val create : unit -> t
(** Empty table. *)

val install : t -> priority:int -> match_:Hfl.t -> action:action -> rule
(** Add a rule; returns it (with its assigned cookie).  Among rules of
    equal priority, earlier-installed rules win. *)

val remove : t -> cookie:int -> bool
(** Remove the rule with the given cookie; [false] if absent. *)

val remove_matching : t -> Hfl.t -> int
(** Remove every rule whose match equals the given HFL (up to
    constraint order); returns the number removed. *)

val lookup : t -> Packet.t -> action option
(** Highest-priority matching rule's action, updating its counters;
    [None] on table miss. *)

val lookup_batch : t -> Packet_batch.t -> action option array -> unit
(** One classification pass over a whole batch: fills [actions.(i)] with
    the winning action (counters updated) or [None] on miss, for each
    member [i].  The exact-match fast path probes directly from the
    batch's packed-key columns; wildcard rules that cannot be decided
    from the key words alone fall out to a per-member scalar scan.
    [actions] must have at least [Packet_batch.length b] slots. *)

val rules : t -> rule list
(** Current rules, highest priority first. *)

val size : t -> int
(** Number of installed rules. *)
