open Openmb_sim

type t = {
  engine : Engine.t;
  name : string;
  switching_delay : Time.t;
  table : Flow_table.t;
  ports : (string, Link.t) Hashtbl.t;
  mutable miss_handler : (Packet.t -> unit) option;
  mutable received : int;
  mutable dropped : int;
  mutable to_controller : int;
  c_recv : Telemetry.counter;
  c_drop : Telemetry.counter;
  c_punt : Telemetry.counter;
  h_occ : Telemetry.histogram;
  (* Staging pool for batches the switch splits across output ports. *)
  pool : Packet_batch.pool;
  mutable actions : Flow_table.action option array;  (* classification scratch *)
}

let create engine ?(switching_delay = Time.us 10.0) ?telemetry ~name () =
  let c n =
    match telemetry with
    | Some tel -> Telemetry.counter tel n
    | None -> Telemetry.null_counter
  in
  {
    engine;
    name;
    switching_delay;
    table = Flow_table.create ();
    ports = Hashtbl.create 8;
    miss_handler = None;
    received = 0;
    dropped = 0;
    to_controller = 0;
    c_recv = c "switch.received";
    c_drop = c "switch.dropped";
    c_punt = c "switch.to_controller";
    h_occ =
      (match telemetry with
      | Some tel -> Telemetry.histogram tel "switch.batch_occupancy"
      | None -> Telemetry.null_histogram);
    pool = Packet_batch.pool ?telemetry ();
    actions = Array.make 64 None;
  }

let name t = t.name
let batch_pool t = t.pool
let attach_port t ~port link = Hashtbl.replace t.ports port link
let table t = t.table
let on_miss t f = t.miss_handler <- Some f

let drop t =
  t.dropped <- t.dropped + 1;
  Telemetry.incr t.c_drop

let punt t p =
  t.to_controller <- t.to_controller + 1;
  Telemetry.incr t.c_punt;
  match t.miss_handler with Some f -> f p | None -> drop t

let forward_now t p =
  match Flow_table.lookup t.table p with
  | Some (Flow_table.Forward port) -> (
    match Hashtbl.find_opt t.ports port with
    | Some link -> Link.send link p
    | None -> drop t)
  | Some Flow_table.Drop -> drop t
  | Some Flow_table.To_controller | None -> punt t p

let receive t p =
  t.received <- t.received + 1;
  Telemetry.incr t.c_recv;
  (* Closure-free: the switch and packet ride in a pooled event cell,
     so the per-packet pipeline delay allocates nothing. *)
  Engine.call2_after t.engine t.switching_delay forward_now t p

(* Classify a whole batch with one flow-table pass, then forward.  The
   common case — every member forwards to the same port — hands the
   batch onward intact, zero copies.  Mixed verdicts walk the members in
   original index order (preserving per-arrival FIFO even when the batch
   splits between forward, drop and punt), staging each output port's
   survivors into a pool batch that is flushed once per port. *)
let forward_batch_now t b =
  let n = Packet_batch.length b in
  if n = 0 then Packet_batch.release b
  else begin
    let actions =
      if Array.length t.actions < n then begin
        t.actions <- Array.make (2 * n) None;
        t.actions
      end
      else t.actions
    in
    Flow_table.lookup_batch t.table b actions;
    let uniform =
      match actions.(0) with
      | Some (Flow_table.Forward port) ->
        let rec same i =
          i >= n
          ||
          match actions.(i) with
          | Some (Flow_table.Forward p') when String.equal p' port -> same (i + 1)
          | _ -> false
        in
        if same 1 then Hashtbl.find_opt t.ports port else None
      | _ -> None
    in
    match uniform with
    | Some link -> Link.send_batch link b
    | None ->
      let staged = ref [] in
      for i = 0 to n - 1 do
        match actions.(i) with
        | Some (Flow_table.Forward port) -> (
          let stage =
            match
              List.find_opt (fun (p, _, _) -> String.equal p port) !staged
            with
            | Some _ as s -> s
            | None -> (
              match Hashtbl.find_opt t.ports port with
              | Some link ->
                let s = (port, link, Packet_batch.alloc t.pool) in
                staged := s :: !staged;
                Some s
              | None -> None)
          in
          match stage with
          | Some (_, _, sb) -> Packet_batch.push sb (Packet_batch.get b i)
          | None -> drop t)
        | Some Flow_table.Drop -> drop t
        | Some Flow_table.To_controller | None -> punt t (Packet_batch.get b i)
      done;
      List.iter (fun (_, link, sb) -> Link.send_batch link sb) (List.rev !staged);
      Packet_batch.release b
  end

let receive_batch t b =
  let n = Packet_batch.length b in
  t.received <- t.received + n;
  Telemetry.add t.c_recv n;
  Telemetry.observe_count t.h_occ n;
  Engine.call2_after t.engine t.switching_delay forward_batch_now t b

let packets_received t = t.received
let packets_dropped t = t.dropped
let packets_to_controller t = t.to_controller
