open Openmb_sim

type t = {
  engine : Engine.t;
  name : string;
  switching_delay : Time.t;
  table : Flow_table.t;
  ports : (string, Link.t) Hashtbl.t;
  mutable miss_handler : (Packet.t -> unit) option;
  mutable received : int;
  mutable dropped : int;
  mutable to_controller : int;
  c_recv : Telemetry.counter;
  c_drop : Telemetry.counter;
  c_punt : Telemetry.counter;
}

let create engine ?(switching_delay = Time.us 10.0) ?telemetry ~name () =
  let c n =
    match telemetry with
    | Some tel -> Telemetry.counter tel n
    | None -> Telemetry.null_counter
  in
  {
    engine;
    name;
    switching_delay;
    table = Flow_table.create ();
    ports = Hashtbl.create 8;
    miss_handler = None;
    received = 0;
    dropped = 0;
    to_controller = 0;
    c_recv = c "switch.received";
    c_drop = c "switch.dropped";
    c_punt = c "switch.to_controller";
  }

let name t = t.name
let attach_port t ~port link = Hashtbl.replace t.ports port link
let table t = t.table
let on_miss t f = t.miss_handler <- Some f

let drop t =
  t.dropped <- t.dropped + 1;
  Telemetry.incr t.c_drop

let punt t p =
  t.to_controller <- t.to_controller + 1;
  Telemetry.incr t.c_punt;
  match t.miss_handler with Some f -> f p | None -> drop t

let forward_now t p =
  match Flow_table.lookup t.table p with
  | Some (Flow_table.Forward port) -> (
    match Hashtbl.find_opt t.ports port with
    | Some link -> Link.send link p
    | None -> drop t)
  | Some Flow_table.Drop -> drop t
  | Some Flow_table.To_controller | None -> punt t p

let receive t p =
  t.received <- t.received + 1;
  Telemetry.incr t.c_recv;
  (* Closure-free: the switch and packet ride in a pooled event cell,
     so the per-packet pipeline delay allocates nothing. *)
  Engine.call2_after t.engine t.switching_delay forward_now t p

let packets_received t = t.received
let packets_dropped t = t.dropped
let packets_to_controller t = t.to_controller
