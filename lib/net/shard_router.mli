(** Flow-space partitioning over a sharded simulation.

    Assigns every flow to the logical shard that owns it — by
    {!Five_tuple.packed_canonical_hash} of its packed key, so both
    directions of a connection land together — and hands out
    {!Openmb_sim.Shard.route}s for moving deliveries onto the owner.
    The router also counts placements per shard, which is what the
    scale bench reports as hash-sharding skew. *)

type t

val create : Openmb_sim.Sharded_engine.t -> t
(** A router over the engine's logical shards.  Cheap: precomputes the
    [shards x shards] route table once. *)

val shards : t -> int

val owner : t -> Five_tuple.packed -> int
(** Owning shard of a packed key: [packed_canonical_hash mod shards].
    Direction-insensitive. *)

val owner_tuple : t -> Five_tuple.t -> int
(** [owner] after packing. *)

val place : t -> Five_tuple.packed -> int
(** Like {!owner}, but also counts the placement toward the skew
    statistics.  Call once per flow (not per packet). *)

val route : t -> src:int -> dst:int -> Openmb_sim.Shard.route
(** The precomputed route posting from shard [src] onto shard [dst].
    Pass it to {!Openmb_sim.Channel.create}'s [?via] or
    {!Openmb_core.Controller.connect}'s [?remote]. *)

val deliver :
  t ->
  src:int ->
  key:Five_tuple.packed ->
  at:Openmb_sim.Time.t ->
  ('a -> unit) ->
  'a ->
  unit
(** [deliver t ~src ~key ~at f x] posts [f x] from shard [src] onto
    [key]'s owning shard at [at] — local short-circuit included, so the
    common same-shard case costs one pooled engine event. *)

val placements : t -> int array
(** Flows counted by {!place}, per shard.  A fresh copy. *)

val skew : t -> float
(** Max/mean of {!placements} — [1.0] is a perfectly even split.
    [nan] before any placement. *)
