(** OpenFlow-style switch.

    A switch owns a {!Flow_table.t} and a set of named output ports,
    each attached to a {!Link.t}.  Received packets are matched against
    the table after a fixed switching delay; misses and
    [To_controller] actions are punted to a registered handler. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?switching_delay:Openmb_sim.Time.t ->
  ?telemetry:Openmb_sim.Telemetry.t ->
  name:string ->
  unit ->
  t
(** [create engine ~name ()] is a switch with an empty flow table and
    no ports.  [switching_delay] defaults to 10 µs.  With [telemetry],
    the switch mirrors its packet counters into the shared
    ["switch.received"] / ["switch.dropped"] / ["switch.to_controller"]
    registry counters (aggregated across switches sharing the
    instance). *)

val name : t -> string

val attach_port : t -> port:string -> Link.t -> unit
(** Bind output [port] to a link.  Re-binding an existing port replaces
    it. *)

val table : t -> Flow_table.t
(** The switch's flow table (for direct rule manipulation by the SDN
    controller). *)

val on_miss : t -> (Packet.t -> unit) -> unit
(** Handler invoked on table miss or [To_controller]; default drops and
    counts. *)

val receive : t -> Packet.t -> unit
(** Packet arrival on any ingress port. *)

val receive_batch : t -> Packet_batch.t -> unit
(** Batch arrival: the whole batch is classified with one flow-table
    pass after the switching delay.  When every member forwards to the
    same port the batch is handed onward intact; mixed verdicts are
    resolved member-by-member in original index order (per-arrival FIFO
    is preserved across the forward/drop/punt split), with each output
    port's survivors re-batched and flushed once.  Ownership of the
    batch passes to the switch.  With [telemetry], batch sizes feed the
    ["switch.batch_occupancy"] count histogram. *)

val batch_pool : t -> Packet_batch.pool
(** The switch's staging pool (for split batches) — exposed for pool
    high-water reporting. *)

val packets_received : t -> int
val packets_dropped : t -> int
val packets_to_controller : t -> int
