open Openmb_sim

type t = {
  name : string;
  channel : Packet.t Channel.t;
  mutable packets : int;
  mutable bytes : int;
}

let create engine ?(latency = Time.us 50.0) ?(bandwidth_bps = 1e9) ~name ~dst () =
  let bytes_per_sec = bandwidth_bps /. 8.0 in
  { name; channel = Channel.create engine ~latency ~bytes_per_sec ~deliver:dst ();
    packets = 0; bytes = 0 }

let send t p =
  let bytes = Packet.wire_bytes p in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes;
  Channel.send t.channel ~bytes p

let name t = t.name
let packets_sent t = t.packets
let bytes_sent t = t.bytes
