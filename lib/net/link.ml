open Openmb_sim

type t = {
  name : string;
  engine : Engine.t;
  channel : Packet.t Channel.t;
  faults : Faults.link option;
  dst : Packet.t -> unit;
  (* Batch receiver; links whose destination is batch-unaware fall back
     to draining arriving batches through the scalar [dst]. *)
  mutable dst_batch : (Packet_batch.t -> unit) option;
  mutable packets : int;
  mutable bytes : int;
}

let create engine ?faults ?(latency = Time.us 50.0) ?(bandwidth_bps = 1e9) ~name
    ~dst () =
  let bytes_per_sec = bandwidth_bps /. 8.0 in
  {
    name;
    engine;
    channel = Channel.create engine ?faults ~latency ~bytes_per_sec ~deliver:dst ();
    faults;
    dst;
    dst_batch = None;
    packets = 0;
    bytes = 0;
  }

let set_dst_batch t f = t.dst_batch <- Some f

let send t p =
  let bytes = Packet.wire_bytes p in
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes;
  Channel.send t.channel ~bytes p

let deliver_batch t b =
  match t.dst_batch with
  | Some f -> f b
  | None -> Packet_batch.drain b t.dst

(* A whole batch crosses the wire as one message: one reservation on the
   channel's serialization clock (so it queues FIFO behind scalar sends
   on the same link) and one delivery event.  Ownership of [b] passes to
   the receiver.

   Per-link faults apply to batch members individually: a dropped member
   is compacted out; a delayed member leaves the batch and arrives as a
   scalar delivery at its jittered time ("split on reorder"); duplicate
   copies also travel scalar.  Survivors stay in arrival order, so the
   fault-free members of a batch are never reordered among themselves. *)
let send_batch t b =
  let n = Packet_batch.length b in
  if n = 0 then Packet_batch.release b
  else begin
    let bytes = Packet_batch.total_bytes b in
    t.packets <- t.packets + n;
    t.bytes <- t.bytes + bytes;
    let arrival = Channel.reserve t.channel ~bytes in
    match t.faults with
    | None -> Engine.call2_at t.engine arrival deliver_batch t b
    | Some link ->
      let now = Engine.now t.engine in
      let sizes = Packet_batch.sizes b in
      for i = 0 to n - 1 do
        match Faults.deliveries link ~now ~bytes:sizes.(i) with
        | [] -> Packet_batch.drop b i
        | first :: dups ->
          if first <> Time.zero then begin
            (* Jittered member: overtakes or falls behind the batch. *)
            Packet_batch.drop b i;
            Engine.call_at t.engine
              Time.(arrival + first)
              t.dst (Packet_batch.get b i)
          end;
          List.iter
            (fun extra ->
              Engine.call_at t.engine
                Time.(arrival + extra)
                t.dst (Packet_batch.get b i))
            dups
      done;
      ignore (Packet_batch.compact b : int);
      if Packet_batch.length b = 0 then Packet_batch.release b
      else Engine.call2_at t.engine arrival deliver_batch t b
  end

let name t = t.name
let packets_sent t = t.packets
let bytes_sent t = t.bytes
