(** Simulated network link.

    Delivers packets to the attached receiver after propagation latency
    plus store-and-forward serialization delay, in FIFO order.  A
    non-zero latency is what creates the paper's in-flight-packet
    window: packets already on the wire keep arriving at the old
    middlebox after a routing update.

    Links also carry whole {!Packet_batch.t} vectors: a batch crosses as
    a single message (its serialization time is the sum of its members'
    wire bytes, on the same channel clock as scalar sends) and lands as
    one delivery event at the receiver. *)

type t

val create :
  Openmb_sim.Engine.t ->
  ?faults:Openmb_sim.Faults.link ->
  ?latency:Openmb_sim.Time.t ->
  ?bandwidth_bps:float ->
  name:string ->
  dst:(Packet.t -> unit) ->
  unit ->
  t
(** [create engine ~name ~dst ()] is a link delivering to [dst].
    [latency] defaults to 50 µs (one LAN hop); [bandwidth_bps] to
    1 Gbit/s, matching the paper's testbed NICs.  With [?faults], every
    scalar send consults the fault stream (drop / duplicate / delay per
    packet), and batch sends apply the same per-packet decisions to each
    member individually — drops are compacted out, delayed members and
    duplicate copies split off as scalar deliveries. *)

val set_dst_batch : t -> (Packet_batch.t -> unit) -> unit
(** Attach a batch receiver.  Without one, arriving batches are drained
    member-by-member through the scalar [dst], so batch-unaware
    components keep working behind a batching sender. *)

val send : t -> Packet.t -> unit
(** Put a packet on the wire. *)

val send_batch : t -> Packet_batch.t -> unit
(** Put a whole batch on the wire as one message.  Ownership of the
    batch passes to the link (released if everything is dropped,
    forwarded to the receiver otherwise).  An empty batch is released
    immediately without touching the channel. *)

val name : t -> string

val packets_sent : t -> int
(** Total packets ever sent, counting each batch member. *)

val bytes_sent : t -> int
