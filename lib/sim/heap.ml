(* Classic array-backed binary heap.  Each element carries an insertion
   sequence number so that equal-priority elements pop in FIFO order. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; len = 0; next_seq = 0 }
let size h = h.len
let is_empty h = h.len = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

let grow h =
  let cap = Array.length h.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy slot reuses an existing entry; it is never read before
     being overwritten because [len] guards all accesses. *)
  if h.len = 0 then h.data <- Array.make new_cap { value = Obj.magic 0; seq = 0 }
  else begin
    let d = Array.make new_cap h.data.(0) in
    Array.blit h.data 0 d 0 h.len;
    h.data <- d
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.len && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.len >= Array.length h.data then grow h;
  h.data.(h.len) <- { value = x; seq = h.next_seq };
  h.next_seq <- h.next_seq + 1;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_exn h =
  if h.len = 0 then invalid_arg "Heap.peek_exn: empty heap";
  h.data.(0).value

let peek h = if h.len = 0 then None else Some h.data.(0).value

let pop_exn h =
  if h.len = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = h.data.(0).value in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  top

let pop h = if h.len = 0 then None else Some (pop_exn h)

let clear h =
  (* Drop the backing array too: the slots above [len] would otherwise
     keep every queued element reachable after a clear. *)
  h.len <- 0;
  h.next_seq <- 0;
  h.data <- [||]

let to_list h =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (h.data.(i).value :: acc)
  in
  collect (h.len - 1) []
