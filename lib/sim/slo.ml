(* SLO objectives over Timeseries with multi-window burn rates.
   Evaluation runs on the scrape tick (Timeseries.on_tick), scanning
   the trailing raw window of each judged series — windows are <= a
   few hundred samples, so the scan is cheap and allocation-free. *)

type comparator = Le | Ge
type signal = Level | Delta

type objective = {
  o_name : string;
  o_series : string;
  o_signal : signal;
  o_cmp : comparator;
  o_target : float;
  o_budget : float;
  o_windows : (int * float) list;
}

let objective ?(signal = Level) ?(budget = 0.01) ?(windows = [ (10, 1.0); (100, 1.0) ]) ~name
    ~series cmp target =
  if budget <= 0.0 || budget > 1.0 then invalid_arg "Slo.objective: budget must be in (0,1]";
  if windows = [] then invalid_arg "Slo.objective: need at least one window";
  List.iter (fun (w, _) -> if w <= 0 then invalid_arg "Slo.objective: window must be positive") windows;
  { o_name = name; o_series = series; o_signal = signal; o_cmp = cmp; o_target = target;
    o_budget = budget; o_windows = windows }

type breach = {
  br_objective : string;
  br_series : string;
  br_at : float;
  br_value : float;
  br_burn : float;
}

(* Burn rates are maintained incrementally: each sample's badness is
   judged once, stored in a bit ring sized to the longest window, and
   every window keeps a rolling bad count (add the entrant, subtract
   the leaver).  Evaluation cost per tick is O(windows), not O(window
   samples) — the scraper runs this on every tick, so the difference
   is the observability overhead gate's margin. *)
type ostate = {
  obj : objective;
  windows : (int * float) array;
  ring : Bytes.t; (* badness of sample k at k mod |ring| *)
  counts : int array; (* rolling bad count per window *)
  mutable seen : int; (* samples judged so far *)
  mutable last_bad : float; (* most recent bad signal value *)
  mutable idx : int; (* series index, resolved lazily (-2 = unresolved) *)
  mutable in_breach : bool;
  mutable last_burn : float;
}

type t = {
  ts : Timeseries.t;
  mutable objs : ostate array;
  mutable n : int;
  mutable breaches_rev : breach list;
  mutable count : int;
  mutable on_breach : breach -> unit;
}

let nop_breach (_ : breach) = ()

let create ts = { ts; objs = [||]; n = 0; breaches_rev = []; count = 0; on_breach = nop_breach }

let add t obj =
  let windows = Array.of_list obj.o_windows in
  let wmax = Array.fold_left (fun m (w, _) -> max m w) 1 windows in
  let os =
    {
      obj;
      windows;
      ring = Bytes.make wmax '\000';
      counts = Array.make (Array.length windows) 0;
      seen = 0;
      last_bad = 0.0;
      idx = -2;
      in_breach = false;
      last_burn = 0.0;
    }
  in
  if t.n = Array.length t.objs then begin
    let cap' = if t.n = 0 then 4 else t.n * 2 in
    let a = Array.make cap' os in
    Array.blit t.objs 0 a 0 t.n;
    t.objs <- a
  end;
  t.objs.(t.n) <- os;
  t.n <- t.n + 1

let[@inline] bad obj v =
  match obj.o_cmp with Le -> v > obj.o_target | Ge -> v < obj.o_target

(* Sample k's judged value: the sample itself, or its delta from
   k-1 (taken as a rise from 0 at the very first sample). *)
let[@inline] signal_at ts si obj k =
  let v = Timeseries.raw_get ts ~series:si k in
  match obj.o_signal with
  | Level -> v
  | Delta -> if k = 0 then v else v -. Timeseries.raw_get ts ~series:si (k - 1)

(* Judge sample [k] once and roll every window's bad count forward:
   add the entrant, subtract the sample falling out of the window (its
   badness still sits in the ring — it is only overwritten by [k]'s
   own slot after the subtraction, which is exactly the leaver when
   the window spans the whole ring). *)
let judge_sample ts os k =
  let v = signal_at ts os.idx os.obj k in
  let b = bad os.obj v in
  if b then os.last_bad <- v;
  let rcap = Bytes.length os.ring in
  for i = 0 to Array.length os.windows - 1 do
    let w, _ = Array.unsafe_get os.windows i in
    let c = Array.unsafe_get os.counts i in
    let c = if k >= w then c - Char.code (Bytes.unsafe_get os.ring ((k - w) mod rcap)) else c in
    Array.unsafe_set os.counts i (if b then c + 1 else c)
  done;
  Bytes.unsafe_set os.ring (k mod rcap) (if b then '\001' else '\000')

let eval_objective t now os =
  if os.idx = -2 then os.idx <- Timeseries.index t.ts os.obj.o_series;
  if os.idx >= 0 && Timeseries.total t.ts > 0 then begin
    let obj = os.obj in
    let total = Timeseries.total t.ts in
    (* Catch up on samples judged since the last evaluation — one per
       tick when attached.  If evaluation lagged past the retained
       window (detached tracker evaluated rarely), the unreadable gap
       is dropped and the rolling counts restart from what remains. *)
    if total > os.seen then begin
      let ret = Timeseries.retained t.ts in
      let lo_avail = total - ret + (match obj.o_signal with Level -> 0 | Delta -> 1) in
      let lo = if lo_avail < 0 then 0 else lo_avail in
      let lo =
        if lo > os.seen then begin
          Array.fill os.counts 0 (Array.length os.counts) 0;
          Bytes.fill os.ring 0 (Bytes.length os.ring) '\000';
          lo
        end
        else os.seen
      in
      for k = lo to total - 1 do
        judge_sample t.ts os k
      done;
      os.seen <- total
    end;
    let all_burning = ref true and worst_burn = ref 0.0 in
    for i = 0 to Array.length os.windows - 1 do
      let w, thr = os.windows.(i) in
      let examined = min total w in
      let burn =
        if examined = 0 then 0.0
        else float_of_int os.counts.(i) /. float_of_int examined /. obj.o_budget
      in
      if burn > !worst_burn then worst_burn := burn;
      if burn < thr then all_burning := false
    done;
    os.last_burn <- !worst_burn;
    if !all_burning then begin
      if not os.in_breach then begin
        os.in_breach <- true;
        let br =
          { br_objective = obj.o_name; br_series = obj.o_series; br_at = Time.to_seconds now;
            br_value = os.last_bad; br_burn = !worst_burn }
        in
        t.breaches_rev <- br :: t.breaches_rev;
        t.count <- t.count + 1;
        t.on_breach br
      end
    end
    else os.in_breach <- false
  end

let evaluate t ~now =
  for i = 0 to t.n - 1 do
    eval_objective t now t.objs.(i)
  done

let attach t = Timeseries.set_on_tick t.ts (fun now -> evaluate t ~now)
let breaches t = List.rev t.breaches_rev
let breach_count t = t.count
let set_on_breach t f = t.on_breach <- f

let find_obj t name =
  let rec go i =
    if i >= t.n then None
    else if String.equal t.objs.(i).obj.o_name name then Some t.objs.(i)
    else go (i + 1)
  in
  go 0

let in_breach t name = match find_obj t name with Some os -> os.in_breach | None -> false
let burn_rate t name = match find_obj t name with Some os -> os.last_burn | None -> 0.0

let status_cell t series =
  let any = ref false and breached = ref false and burn = ref 0.0 in
  for i = 0 to t.n - 1 do
    let os = t.objs.(i) in
    if String.equal os.obj.o_series series then begin
      any := true;
      if os.in_breach then breached := true;
      if os.last_burn > !burn then burn := os.last_burn
    end
  done;
  if not !any then "-"
  else if !breached then "BREACH"
  else if !burn > 0.0 then Printf.sprintf "burn r=%.2f" !burn
  else "ok"

let pp_dash ?width fmt t =
  Timeseries.pp_dash ?width ~status:(status_cell t) fmt t.ts;
  if t.count > 0 then begin
    Format.fprintf fmt "breaches (%d):@." t.count;
    List.iter
      (fun br ->
        Format.fprintf fmt "  t=%.6fs %s on %s value=%g burn=%.2f@." br.br_at br.br_objective
          br.br_series br.br_value br.br_burn)
      (breaches t)
  end

let breaches_to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i br ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"objective\":%S,\"series\":%S,\"at_s\":%.9g,\"value\":%.9g,\"burn\":%.9g}"
           br.br_objective br.br_series br.br_at br.br_value br.br_burn))
    (breaches t);
  Buffer.add_char buf ']';
  Buffer.contents buf
