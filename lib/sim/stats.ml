type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.0; len = 0; sum = 0.0; sum_sq = 0.0; sorted = true }

let add t x =
  if t.len >= Array.length t.data then begin
    let d = Array.make (2 * Array.length t.data) 0.0 in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  t.sorted <- false

let add_n t x ~n =
  if n > 0 then begin
    if t.len + n > Array.length t.data then begin
      let cap = ref (2 * Array.length t.data) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let d = Array.make !cap 0.0 in
      Array.blit t.data 0 d 0 t.len;
      t.data <- d
    end;
    Array.fill t.data t.len n x;
    t.len <- t.len + n;
    let fn = float_of_int n in
    t.sum <- t.sum +. (x *. fn);
    t.sum_sq <- t.sum_sq +. (x *. x *. fn);
    t.sorted <- false
  end

let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then nan else t.sum /. float_of_int t.len

let variance t =
  if t.len = 0 then nan
  else
    let m = mean t in
    Float.max 0.0 ((t.sum_sq /. float_of_int t.len) -. (m *. m))

let stddev t = sqrt (variance t)

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.len in
    Array.sort Float.compare sub;
    Array.blit sub 0 t.data 0 t.len;
    t.sorted <- true
  end

let min_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(0)
  end

let max_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(t.len - 1)
  end

let percentile t p =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else
      let frac = rank -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
  end

let median t = percentile t 50.0

let cdf t ~points =
  if t.len = 0 || points <= 0 then []
  else begin
    ensure_sorted t;
    let lo = t.data.(0) and hi = t.data.(t.len - 1) in
    let step = if points = 1 then 0.0 else (hi -. lo) /. float_of_int (points - 1) in
    (* For each x, the fraction of observations <= x via binary search
       for the upper bound. *)
    let frac_le x =
      let rec search a b =
        if a >= b then a
        else
          let mid = (a + b) / 2 in
          if t.data.(mid) <= x then search (mid + 1) b else search a mid
      in
      float_of_int (search 0 t.len) /. float_of_int t.len
    in
    List.init points (fun i ->
        let x = lo +. (float_of_int i *. step) in
        (x, frac_le x))
  end

let fraction_above t x =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let rec search a b =
      if a >= b then a
      else
        let mid = (a + b) / 2 in
        if t.data.(mid) <= x then search (mid + 1) b else search a mid
    in
    float_of_int (t.len - search 0 t.len) /. float_of_int t.len
  end

let histogram t ~bins =
  if t.len = 0 || bins <= 0 then []
  else begin
    ensure_sorted t;
    let lo = t.data.(0) and hi = t.data.(t.len - 1) in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    for i = 0 to t.len - 1 do
      let b = int_of_float ((t.data.(i) -. lo) /. width) in
      let b = if b >= bins then bins - 1 else b in
      counts.(b) <- counts.(b) + 1
    done;
    List.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end
