(* Time-series history over Telemetry: a closure-free timer-wheel
   scraper sampling registered sources into fixed-capacity ring
   buffers with 10x/100x rollups.  See timeseries.mli for the
   contract; the load-bearing invariants are:

   - the sample path allocates nothing (preallocated flat float
     arrays, accumulator registers flushed in place);
   - rollup buckets are aligned to absolute sample indices — bucket b
     at factor f always covers raw samples [f*b, f*(b+1)), no matter
     how often the rings wrapped;
   - the tick schedules itself with Engine.call_at (pooled cells, the
     scraper itself as the argument) and stops when its engine has
     nothing else pending, so drain-mode runs terminate. *)

type source =
  | Counter of Telemetry.counter
  | Gauge of Telemetry.gauge
  | Quantile of Telemetry.histogram * float
  | Poll of (unit -> float)

type mode = Sum | Max | Last

let levels = 2
let factors = [| 10; 100 |]
let level_factor l = factors.(l)

(* One registered series.  Rollup state is flat: per level, [cap]
   ring slots for each of min/max/mean-sum/last, plus one in-progress
   accumulator register (flushed to its ring slot every [factor]
   samples, keyed by absolute index so wrap never shifts buckets). *)
type series = {
  sr_name : string;
  sr_mode : mode;
  sr_source : source;
  raw : float array; (* cap slots, slot = abs_index mod cap *)
  l_min : float array array; (* levels x cap *)
  l_max : float array array;
  l_sum : float array array;
  l_last : float array array;
  acc_min : float array; (* levels *)
  acc_max : float array;
  acc_sum : float array;
  acc_last : float array;
  acc_n : int array;
}

type t = {
  eng : Engine.t;
  cap : int;
  mutable series : series array;
  mutable n : int;
  mutable total : int; (* raw samples taken per series *)
  mutable period : Time.t;
  mutable until : Time.t; (* horizon when bounded *)
  mutable bounded : bool;
  mutable running : bool;
  mutable t0 : Time.t; (* virtual time of sample 0 *)
  mutable on_tick : Time.t -> unit;
}

let no_series : series array = [||]
let nop_tick (_ : Time.t) = ()

let create ?(cap = 512) eng =
  let cap = if cap < 16 then 16 else cap in
  {
    eng;
    cap;
    series = no_series;
    n = 0;
    total = 0;
    period = Time.ms 1.0;
    until = Time.zero;
    bounded = false;
    running = false;
    t0 = Time.zero;
    on_tick = nop_tick;
  }

let default_mode = function
  | Counter _ | Poll _ | Gauge _ -> Sum
  | Quantile _ -> Max

let add t ~name ?mode src =
  for i = 0 to t.n - 1 do
    if String.equal t.series.(i).sr_name name then
      invalid_arg ("Timeseries.add: duplicate series " ^ name)
  done;
  let mode = match mode with Some m -> m | None -> default_mode src in
  let s =
    {
      sr_name = name;
      sr_mode = mode;
      sr_source = src;
      raw = Array.make t.cap 0.0;
      l_min = Array.init levels (fun _ -> Array.make t.cap 0.0);
      l_max = Array.init levels (fun _ -> Array.make t.cap 0.0);
      l_sum = Array.init levels (fun _ -> Array.make t.cap 0.0);
      l_last = Array.init levels (fun _ -> Array.make t.cap 0.0);
      acc_min = Array.make levels 0.0;
      acc_max = Array.make levels 0.0;
      acc_sum = Array.make levels 0.0;
      acc_last = Array.make levels 0.0;
      acc_n = Array.make levels 0;
    }
  in
  if t.n = Array.length t.series then begin
    let cap' = if t.n = 0 then 8 else t.n * 2 in
    let a = Array.make cap' s in
    Array.blit t.series 0 a 0 t.n;
    t.series <- a
  end;
  t.series.(t.n) <- s;
  t.n <- t.n + 1

let[@inline] read_source = function
  | Counter c -> float_of_int (Telemetry.counter_value c)
  | Gauge g -> float_of_int (Telemetry.gauge_value g)
  | Quantile (h, q) -> Telemetry.quantile h q
  | Poll f -> f ()

(* Sample every series once.  [k] is the absolute index of this
   round; flushing level l's accumulator at acc_n = factor lands the
   completed bucket at absolute bucket index (k+1)/factor - 1, whose
   ring slot is that index mod cap — alignment is a function of k
   alone, never of wrap history. *)
let sample t =
  let k = t.total in
  let cap = t.cap in
  let slot = k mod cap in
  for i = 0 to t.n - 1 do
    let s = Array.unsafe_get t.series i in
    let v = read_source s.sr_source in
    Array.unsafe_set s.raw slot v;
    for l = 0 to levels - 1 do
      let n = Array.unsafe_get s.acc_n l in
      if n = 0 then begin
        Array.unsafe_set s.acc_min l v;
        Array.unsafe_set s.acc_max l v;
        Array.unsafe_set s.acc_sum l v
      end
      else begin
        if v < Array.unsafe_get s.acc_min l then Array.unsafe_set s.acc_min l v;
        if v > Array.unsafe_get s.acc_max l then Array.unsafe_set s.acc_max l v;
        Array.unsafe_set s.acc_sum l (Array.unsafe_get s.acc_sum l +. v)
      end;
      Array.unsafe_set s.acc_last l v;
      let n = n + 1 in
      let f = Array.unsafe_get factors l in
      if n = f then begin
        let b = ((k + 1) / f) - 1 in
        let bs = b mod cap in
        Array.unsafe_set (Array.unsafe_get s.l_min l) bs (Array.unsafe_get s.acc_min l);
        Array.unsafe_set (Array.unsafe_get s.l_max l) bs (Array.unsafe_get s.acc_max l);
        Array.unsafe_set (Array.unsafe_get s.l_sum l) bs (Array.unsafe_get s.acc_sum l);
        Array.unsafe_set (Array.unsafe_get s.l_last l) bs (Array.unsafe_get s.acc_last l);
        Array.unsafe_set s.acc_n l 0
      end
      else Array.unsafe_set s.acc_n l n
    done
  done;
  t.total <- k + 1

(* The scrape tick.  Top-level recursive function scheduled with
   [Engine.call_at eng next tick t]: the event cell carries (tick, t),
   no closure is allocated per tick.  Rescheduling rules:
   - stopped scrapers fire once more as a no-op (call_at events are
     not cancellable) and do not reschedule;
   - when [Engine.pending] is 0 after this dispatch, nothing else can
     ever run on this engine, so rescheduling would spin the drain
     loop forever — stop instead;
   - a bounded scraper stops past [until]. *)
let rec tick t =
  if t.running then begin
    sample t;
    let now = Engine.now t.eng in
    t.on_tick now;
    let next = Time.(now + t.period) in
    if
      t.running
      && Engine.pending t.eng > 0
      && ((not t.bounded) || Time.compare next t.until <= 0)
    then Engine.call_at t.eng next tick t
    else t.running <- false
  end

let start ?until t ~every =
  if Time.compare every Time.zero <= 0 then
    invalid_arg "Timeseries.start: period must be positive";
  if t.running then invalid_arg "Timeseries.start: already running";
  t.period <- every;
  (match until with
  | Some u ->
      t.bounded <- true;
      t.until <- u
  | None -> t.bounded <- false);
  t.running <- true;
  t.t0 <- Engine.now t.eng;
  Engine.call_at t.eng (Engine.now t.eng) tick t

let stop t = t.running <- false
let running t = t.running
let set_on_tick t f = t.on_tick <- f
let total t = t.total
let ticks = total
let retained t = if t.total < t.cap then t.total else t.cap
let period t = t.period
let n_series t = t.n
let series_name t i = t.series.(i).sr_name
let series_mode t i = t.series.(i).sr_mode

let index t name =
  let rec go i = if i >= t.n then -1 else if String.equal t.series.(i).sr_name name then i else go (i + 1) in
  go 0

let raw_get t ~series k =
  if k < 0 || k >= t.total || k < t.total - t.cap then
    invalid_arg "Timeseries.raw_get: index outside retained window";
  t.series.(series).raw.(k mod t.cap)

let time_of_sample t k = Time.to_seconds t.t0 +. (float_of_int k *. Time.to_seconds t.period)
let completed_buckets t ~level = t.total / factors.(level)

let retained_buckets t ~level =
  let c = completed_buckets t ~level in
  if c < t.cap then c else t.cap

let bucket_get t ~series ~level b =
  let c = completed_buckets t ~level in
  if b < 0 || b >= c || b < c - t.cap then
    invalid_arg "Timeseries.bucket_get: bucket outside retained window";
  let s = t.series.(series) in
  let bs = b mod t.cap in
  let f = float_of_int factors.(level) in
  (s.l_min.(level).(bs), s.l_max.(level).(bs), s.l_sum.(level).(bs) /. f, s.l_last.(level).(bs))

(* -- snapshots ---------------------------------------------------- *)

(* Copied-out, absolute-indexed views: [ss_first] is the absolute
   index of raw.(0); each rollup level carries its factor and the
   absolute index of its first retained bucket. *)
type level_snap = {
  lv_factor : int;
  lv_first : int;
  lv_min : float array;
  lv_max : float array;
  lv_mean : float array;
  lv_last : float array;
}

type series_snap = {
  ss_name : string;
  ss_mode : mode;
  ss_total : int;
  ss_first : int;
  ss_raw : float array;
  ss_levels : level_snap array;
}

type snapshot = { sn_period : float; sn_series : series_snap list }

let snapshot t =
  let ret = retained t in
  let first = t.total - ret in
  let snap_series s =
    let raw = Array.init ret (fun j -> s.raw.((first + j) mod t.cap)) in
    let levels_ =
      Array.init levels (fun l ->
          let nb = retained_buckets t ~level:l in
          let bfirst = completed_buckets t ~level:l - nb in
          let f = float_of_int factors.(l) in
          {
            lv_factor = factors.(l);
            lv_first = bfirst;
            lv_min = Array.init nb (fun j -> s.l_min.(l).((bfirst + j) mod t.cap));
            lv_max = Array.init nb (fun j -> s.l_max.(l).((bfirst + j) mod t.cap));
            lv_mean = Array.init nb (fun j -> s.l_sum.(l).((bfirst + j) mod t.cap) /. f);
            lv_last = Array.init nb (fun j -> s.l_last.(l).((bfirst + j) mod t.cap));
          })
    in
    {
      ss_name = s.sr_name;
      ss_mode = s.sr_mode;
      ss_total = t.total;
      ss_first = first;
      ss_raw = raw;
      ss_levels = levels_;
    }
  in
  let l = List.init t.n (fun i -> snap_series t.series.(i)) in
  {
    sn_period = Time.to_seconds t.period;
    sn_series = List.sort (fun a b -> String.compare a.ss_name b.ss_name) l;
  }

(* Pointwise combine of two absolute-indexed windows over their
   intersection.  Under Sum, min/max columns add — the sum of
   per-side minima is a valid lower bound for the summed signal (both
   sides' buckets cover the same absolute sample range), so the
   sandwich invariant survives merging. *)
let combine_window mode (fa, a) (fb, b) =
  let la = Array.length a and lb = Array.length b in
  let first = max fa fb and last = min (fa + la) (fb + lb) in
  let n = last - first in
  if n <= 0 then (first, [||])
  else
    ( first,
      Array.init n (fun j ->
          let va = a.(first - fa + j) and vb = b.(first - fb + j) in
          match mode with Sum -> va +. vb | Max -> if va > vb then va else vb | Last -> vb) )

let merge_series a b =
  if a.ss_mode <> b.ss_mode then
    invalid_arg ("Timeseries.merge: mode mismatch on series " ^ a.ss_name);
  let first, raw = combine_window a.ss_mode (a.ss_first, a.ss_raw) (b.ss_first, b.ss_raw) in
  let nl = min (Array.length a.ss_levels) (Array.length b.ss_levels) in
  let levels_ =
    Array.init nl (fun l ->
        let la = a.ss_levels.(l) and lb = b.ss_levels.(l) in
        if la.lv_factor <> lb.lv_factor then
          invalid_arg "Timeseries.merge: rollup factor mismatch";
        let bf, mn = combine_window a.ss_mode (la.lv_first, la.lv_min) (lb.lv_first, lb.lv_min) in
        let _, mx = combine_window a.ss_mode (la.lv_first, la.lv_max) (lb.lv_first, lb.lv_max) in
        let _, mean = combine_window a.ss_mode (la.lv_first, la.lv_mean) (lb.lv_first, lb.lv_mean) in
        let _, lst = combine_window a.ss_mode (la.lv_first, la.lv_last) (lb.lv_first, lb.lv_last) in
        { lv_factor = la.lv_factor; lv_first = bf; lv_min = mn; lv_max = mx; lv_mean = mean; lv_last = lst })
  in
  {
    ss_name = a.ss_name;
    ss_mode = a.ss_mode;
    ss_total = min a.ss_total b.ss_total;
    ss_first = first;
    ss_raw = raw;
    ss_levels = levels_;
  }

let merge sa sb =
  if sa.sn_series <> [] && sb.sn_series <> [] && sa.sn_period <> sb.sn_period then
    invalid_arg "Timeseries.merge: period mismatch";
  let rec go a b =
    match (a, b) with
    | [], s | s, [] -> s
    | xa :: ra, xb :: rb ->
        let c = String.compare xa.ss_name xb.ss_name in
        if c < 0 then xa :: go ra b
        else if c > 0 then xb :: go a rb
        else merge_series xa xb :: go ra rb
  in
  {
    sn_period = (if sa.sn_series = [] then sb.sn_period else sa.sn_period);
    sn_series = go sa.sn_series sb.sn_series;
  }

let merge_all = function
  | [] -> { sn_period = 0.0; sn_series = [] }
  | s :: rest -> List.fold_left merge s rest

(* -- export ------------------------------------------------------- *)

let mode_string = function Sum -> "sum" | Max -> "max" | Last -> "last"

let json_floats buf a =
  Buffer.add_char buf '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.9g" v))
    a;
  Buffer.add_char buf ']'

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"period_s\":%.9g,\"series\":{" snap.sn_period);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "%S:{\"mode\":%S,\"total\":%d,\"first\":%d,\"raw\":" s.ss_name
           (mode_string s.ss_mode) s.ss_total s.ss_first);
      json_floats buf s.ss_raw;
      Buffer.add_string buf ",\"rollups\":[";
      Array.iteri
        (fun l lv ->
          if l > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "{\"factor\":%d,\"first\":%d,\"min\":" lv.lv_factor lv.lv_first);
          json_floats buf lv.lv_min;
          Buffer.add_string buf ",\"max\":";
          json_floats buf lv.lv_max;
          Buffer.add_string buf ",\"mean\":";
          json_floats buf lv.lv_mean;
          Buffer.add_string buf ",\"last\":";
          json_floats buf lv.lv_last;
          Buffer.add_char buf '}')
        s.ss_levels;
      Buffer.add_string buf "]}")
    snap.sn_series;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* -- terminal dashboard ------------------------------------------- *)

let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline buf t si width =
  let ret = retained t in
  let n = min ret width in
  if n = 0 then Buffer.add_string buf (String.make width ' ')
  else begin
    let first = t.total - n in
    let lo = ref infinity and hi = ref neg_infinity in
    for k = first to t.total - 1 do
      let v = raw_get t ~series:si k in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    let span = !hi -. !lo in
    for _ = n to width - 1 do
      Buffer.add_char buf ' '
    done;
    for k = first to t.total - 1 do
      let v = raw_get t ~series:si k in
      let g =
        if span <= 0.0 then 0
        else
          let x = int_of_float ((v -. !lo) /. span *. 7.99) in
          if x < 0 then 0 else if x > 7 then 7 else x
      in
      Buffer.add_string buf spark_glyphs.(g)
    done
  end

let human v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else if a >= 1.0 || a = 0.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v

let pp_dash ?(width = 48) ?status fmt t =
  let namew =
    let w = ref 10 in
    for i = 0 to t.n - 1 do
      let l = String.length t.series.(i).sr_name in
      if l > !w then w := l
    done;
    !w
  in
  Format.fprintf fmt "%-*s %-*s %10s %10s %10s%s@." namew "series" width "history" "last" "min" "max"
    (match status with None -> "" | Some _ -> "  slo");
  for i = 0 to t.n - 1 do
    let buf = Buffer.create (width * 3) in
    sparkline buf t i width;
    let ret = retained t in
    let last, lo, hi =
      if ret = 0 then (0.0, 0.0, 0.0)
      else begin
        let lo = ref infinity and hi = ref neg_infinity in
        for k = t.total - ret to t.total - 1 do
          let v = raw_get t ~series:i k in
          if v < !lo then lo := v;
          if v > !hi then hi := v
        done;
        (raw_get t ~series:i (t.total - 1), !lo, !hi)
      end
    in
    Format.fprintf fmt "%-*s %s %10s %10s %10s%s@." namew t.series.(i).sr_name (Buffer.contents buf)
      (human last) (human lo) (human hi)
      (match status with None -> "" | Some f -> "  " ^ f t.series.(i).sr_name)
  done
