(** Timeline recorder.

    Components log labelled occurrences (packet processed, get started,
    event raised, …) against the virtual clock; the Figure-7 bench then
    extracts and prints the per-middlebox activity timeline. *)

type entry = {
  time : Time.t;  (** When the occurrence happened. *)
  actor : string;  (** Component that logged it, e.g. ["prads-1"]. *)
  kind : string;  (** Occurrence class, e.g. ["pkt"], ["get-start"]. *)
  detail : string;  (** Free-form annotation. *)
}
(** One recorded occurrence. *)

type t
(** A mutable, append-only timeline, backed by a growable
    {!Telemetry.Trace} — entries are zero-duration spans with interned
    actor/kind strings, so {!count} and {!filter} scan flat arrays
    rather than a list. *)

val create : Engine.t -> t
(** A recorder stamping entries with the engine's clock. *)

val trace : t -> Telemetry.Trace.t
(** The underlying span store (e.g. for Chrome trace export). *)

val record : t -> actor:string -> kind:string -> detail:string -> unit
(** Append one entry at the current virtual time. *)

val entries : t -> entry list
(** All entries in chronological (append) order. *)

val filter :
  ?actor:string -> ?kind:string -> ?since:Time.t -> ?until:Time.t -> t -> entry list
(** Entries matching all the given criteria. *)

val count : ?actor:string -> ?kind:string -> t -> int
(** Number of matching entries. *)

val pp_entry : Format.formatter -> entry -> unit
(** Render one entry as ["[   1.204s] prads-1          pkt        http 10.0.0.1:80"]. *)

val clear : t -> unit
(** Drop all recorded entries. *)
