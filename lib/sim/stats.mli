(** Online measurement collection.

    The benches accumulate per-packet latencies, operation durations and
    byte counts into {!t} values and then extract means, percentiles and
    CDF series for the paper's figures. *)

type t
(** A mutable sample accumulator.  Stores every observation, so suitable
    for the bounded sample sizes of the benches (≤ millions). *)

val create : unit -> t
(** Fresh empty accumulator. *)

val add : t -> float -> unit
(** Record one observation. *)

val add_n : t -> float -> n:int -> unit
(** [add_n t x ~n] records [n] identical observations of [x] with one
    array fill — the batch-path form of {!add}.  [n <= 0] is a
    no-op. *)

val count : t -> int
(** Number of observations recorded. *)

val total : t -> float
(** Sum of all observations. *)

val mean : t -> float
(** Arithmetic mean; [nan] when empty. *)

val variance : t -> float
(** Population variance; [nan] when empty. *)

val stddev : t -> float
(** Population standard deviation; [nan] when empty. *)

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation between closest ranks; [nan] when empty. *)

val median : t -> float
(** 50th percentile. *)

val cdf : t -> points:int -> (float * float) list
(** [cdf t ~points] is an evenly spaced [(value, fraction <= value)]
    series of [points] entries suitable for plotting a CDF. *)

val fraction_above : t -> float -> float
(** [fraction_above t x] is the fraction of observations strictly
    greater than [x]. *)

val histogram : t -> bins:int -> (float * float * int) list
(** [histogram t ~bins] is a list of [(lo, hi, count)] buckets of equal
    width spanning the observed range. *)
