(** Time-series telemetry history: a per-registry scraper that samples
    selected counters, gauges and histogram quantiles on a fixed
    virtual-time period into fixed-capacity ring buffers with
    multi-resolution rollups.

    {!Telemetry} answers "what is the value now"; this module answers
    "how did it evolve" — the signal the paper's evaluation watches
    (serialization windows, move latency, scaling behaviour over time)
    and the input the SLO layer ({!Slo}) and the ROADMAP-3 autoscaler
    judge against targets.

    Design goals, in order:

    - {b Zero allocation on the sample path.}  Every ring and rollup
      accumulator is preallocated at registration; a scrape tick is a
      source read (counter/gauge load, histogram bucket walk, or a
      caller-supplied poll closure) plus flat float-array stores.

    - {b Observation must not perturb the simulation.}  Ticks are
      closure-free timer-wheel events ({!Engine.call_at} with the
      scraper as the argument); they draw from no PRNG stream, touch no
      application state, and stop by themselves when their engine has
      nothing else pending — a seeded run with scraping enabled is
      state-fingerprint-identical to the same run without it, across
      any domain count (property-tested in [test/test_shard.ml]).

    - {b Bounded memory, long horizon.}  Each series keeps [cap] raw
      samples plus [cap] buckets at 10x and 100x downsampling
      (min/max/mean/last per bucket), so the retained horizon spans
      [cap * 100] ticks at degraded resolution.  Bucket boundaries are
      aligned to {e absolute} sample indices, so ring wrap-around never
      shifts them.

    - {b Mergeable across shards.}  {!snapshot}s combine like
      {!Telemetry.Registry.merge}: series match by name and merge
      pointwise over the overlap of their absolute sample ranges,
      according to each series' {!mode}. *)

type t

type source =
  | Counter of Telemetry.counter  (** Samples the cumulative count. *)
  | Gauge of Telemetry.gauge  (** Samples the current level. *)
  | Quantile of Telemetry.histogram * float
      (** Samples [quantile h q] — e.g. a p99 latency series. *)
  | Poll of (unit -> float)
      (** Escape hatch for values outside the registry (per-MB packet
          counts, pool occupancy).  Called once per tick; must not
          allocate if the zero-alloc guarantee matters to the caller,
          and must not mutate simulation state (determinism). *)

(** How a series combines across shards in {!merge}. *)
type mode =
  | Sum  (** Disjoint-population series: counters, packet counts. *)
  | Max  (** Worst-of series: latency quantiles, backlogs. *)
  | Last  (** Right-hand side wins (gauge-like, ordered by caller). *)

val create : ?cap:int -> Engine.t -> t
(** A scraper bound to [engine]'s virtual clock.  [cap] (default
    [512], min [16]) bounds every ring: raw and both rollup levels each
    retain [cap] entries per series. *)

val add : t -> name:string -> ?mode:mode -> source -> unit
(** Register a series.  The default [mode] follows the source kind:
    [Sum] for counters and polls, [Max] for quantiles, [Sum] for
    gauges (cross-shard gauge levels describe disjoint subsystems, so
    unlike registry merging they add).  Raises [Invalid_argument] on a
    duplicate name. *)

val start : ?until:Time.t -> t -> every:Time.t -> unit
(** Begin scraping: one sample of every series each [every] of virtual
    time, the first immediately.  The tick self-reschedules while its
    engine has other pending events (and, with [until], only up to that
    horizon); when the rest of the simulation drains the scraper stops
    rather than holding the run open.  One scraper per engine: two
    auto-stopping scrapers would keep each other alive.  Raises
    [Invalid_argument] if [every <= 0] or the scraper is running. *)

val stop : t -> unit
(** Stop sampling (the already-scheduled tick becomes a no-op). *)

val running : t -> bool

val set_on_tick : t -> (Time.t -> unit) -> unit
(** Hook run after each sample round — {!Slo.attach} uses this to
    evaluate objectives on fresh samples. *)

(** {1 Reads}

    Samples are addressed by {e absolute} index: the [k]-th sample ever
    taken ([k] in [\[total - retained, total)]).  Rollup buckets are
    likewise addressed by absolute bucket index; bucket [b] of the
    level with factor [f] aggregates raw samples [\[f*b, f*(b+1))]. *)

val ticks : t -> int
(** Sample rounds completed ([= total] samples per series). *)

val total : t -> int

val retained : t -> int
(** Raw samples currently held per series: [min total cap]. *)

val period : t -> Time.t
val n_series : t -> int
val series_name : t -> int -> string

val index : t -> string -> int
(** Series index of [name], or [-1]. *)

val series_mode : t -> int -> mode

val raw_get : t -> series:int -> int -> float
(** Raw sample at absolute index [k]; raises [Invalid_argument] outside
    the retained window. *)

val time_of_sample : t -> int -> float
(** Virtual time (seconds) at which sample [k] was taken: the scrape
    start time plus [k] periods. *)

val levels : int
(** Number of rollup levels (2). *)

val level_factor : int -> int
(** Downsampling factor of level [l]: 10 and 100. *)

val completed_buckets : t -> level:int -> int
(** Buckets fully flushed so far at [level]: [total / factor]. *)

val retained_buckets : t -> level:int -> int

val bucket_get : t -> series:int -> level:int -> int -> float * float * float * float
(** [(min, max, mean, last)] of the bucket at absolute bucket index
    [b]; raises [Invalid_argument] outside the retained window. *)

(** {1 Snapshots, merging, export} *)

type snapshot

val snapshot : t -> snapshot
(** Immutable copy of every series (raw window + completed rollup
    buckets), for merging and export. *)

val merge : snapshot -> snapshot -> snapshot
(** Combine two snapshots series-by-series (matched by name, which must
    agree on mode; periods must agree).  Overlapping absolute sample
    ranges combine pointwise per the series {!mode}; the result covers
    the intersection of the two ranges, and series present on only one
    side pass through.  Rollup min/max under [Sum] are conservative
    bounds (sum of per-side minima / maxima), so the min <= mean <= max
    sandwich is preserved.  Associative. *)

val merge_all : snapshot list -> snapshot

val to_json : snapshot -> string
(** Compact JSON:
    [{"period_s":p,"series":{NAME:{"mode":m,"total":n,"first":k,
    "raw":[...],"rollups":[{"factor":10,"first":b,"min":[...],...}]}}}] *)

val pp_dash : ?width:int -> ?status:(string -> string) -> Format.formatter -> t -> unit
(** Terminal dashboard: one sparkline row per series (last [width]
    raw samples, default 48) with last/min/max columns, plus the
    [status] cell per series when given (the SLO column —
    {!Slo.pp_dash} supplies it). *)
