(** Post-mortem flight recorder: on SLO breach, invariant failure or
    explicit trigger, capture one JSON artifact bundling everything a
    triage session needs — the recent {!Timeseries} windows, the tail
    of the {!Telemetry.Trace} span ring, a registry snapshot, the SLO
    breach log, and the replayable {!Faults} plan string when the run
    was impaired.  The chaos/soak harnesses wire one of these up so a
    failing seed ships its own black box alongside the plan. *)

type t

val create :
  ?span_tail:int ->
  ?telemetry:Telemetry.t ->
  ?timeseries:Timeseries.t ->
  ?slo:Slo.t ->
  ?fault_plan:string ->
  unit ->
  t
(** All sections optional — absent sources render as JSON [null].
    [span_tail] (default 256) bounds the number of most-recent spans
    included. *)

val set_fault_plan : t -> string -> unit

val dump : t -> now:Time.t -> reason:string -> string
(** Render the bundle:
    [{"reason":r,"at_s":t,"fault_plan":p,"breaches":[...],
    "series":{...},"registry":{...},"span_tail":[...]}].
    Also retained as {!last_bundle}. *)

val dump_to_file : t -> now:Time.t -> reason:string -> path:string -> unit

val arm : t -> engine:Engine.t -> unit
(** Install the {!Slo.set_on_breach} hook (requires [slo]): the first
    breach of the run captures a bundle automatically (later breaches
    don't overwrite it — the first excursion is the interesting one).
    Read it back with {!last_bundle}. *)

val last_bundle : t -> string option
(** Most recent bundle rendered by {!dump} / the {!arm} hook. *)

val dumps : t -> int
(** Bundles captured so far. *)
