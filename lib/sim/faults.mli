(** Deterministic fault injection.

    A {!plan} is a pure description of the faults a run should suffer:
    per-link message drop / duplication / bounded reorder / latency
    spikes, global link partition windows, and scheduled middlebox
    crash / restart points.  Applying a plan is fully deterministic —
    every stochastic decision draws from a {!Prng} stream derived from
    the plan seed and the link name, so two runs of the same plan over
    the same traffic make identical fault decisions.

    Channels consult a {!link} handle on every send ({!deliveries});
    agents arm their crash schedule once at connect time
    ({!arm_crashes}). *)

type link_profile = {
  drop : float;  (** Probability a message is silently lost. *)
  duplicate : float;  (** Probability a message is delivered twice. *)
  reorder : float;
      (** Probability a delivery is delayed by a uniform draw from
          [\[0, reorder_window)], letting later messages overtake it. *)
  reorder_window : Time.t;
  spike : float;  (** Probability of an additive latency spike. *)
  spike_delay : Time.t;
}

val clean_link : link_profile
(** All-zero profile: every message delivered exactly once, on time. *)

type partition = { part_from : Time.t; part_until : Time.t }
(** Half-open window [\[part_from, part_until)] during which every
    message sent on a faulted link is lost. *)

type crash = {
  crash_at : Time.t;
  restart_after : Time.t option;
      (** [None] means the MB never comes back. *)
}

type plan = {
  seed : int;
  link : link_profile;  (** Applied to every faulted link. *)
  partitions : partition list;
  crashes : (string * crash) list;  (** Keyed by MB name. *)
}

val clean_plan : seed:int -> plan
(** A plan that injects nothing — useful as an oracle baseline. *)

val random_plan : seed:int -> mbs:string list -> horizon:Time.t -> plan
(** The canonical seed-to-plan generator shared by the chaos harness
    and [bench failover --faults]: drop up to 12%, duplication up to
    10%, reorder up to 30% within [horizon/20], spikes up to 5% of
    [horizon/10], zero to two partitions, and for each named MB a 40%
    chance of one crash (75% of which restart). *)

type t
(** A plan being applied to one engine; owns the fault counters. *)

type link
(** Per-channel fault stream. *)

val create : ?telemetry:Telemetry.t -> Engine.t -> plan -> t
(** With [?telemetry], every realized fault also increments the
    matching ["faults.*"] registry counter (dropped / duplicated /
    delayed / crashes / restarts), mirroring the accessors below. *)

val link : t -> name:string -> link
(** [link t ~name] is the fault stream for the channel called [name].
    Streams are independent per name and of creation order. *)

val deliveries : link -> now:Time.t -> Time.t list
(** [deliveries l ~now] decides the fate of one message sent at [now]:
    the empty list drops it, otherwise each element is an extra delay
    to add to one delivery of the message (two elements duplicate
    it). *)

val arm_crashes :
  t -> name:string -> on_crash:(unit -> unit) -> on_restart:(unit -> unit) -> unit
(** Schedule every crash entry for [name] in the plan: [on_crash] runs
    at [crash_at], and [on_restart] runs [restart_after] later when
    present. *)

(** {1 Counters} *)

val dropped : t -> int
val duplicated : t -> int
val delayed : t -> int
val crashes_fired : t -> int
val restarts_fired : t -> int
