(** Deterministic fault injection with tc-netem-class impairment
    profiles.

    A {!plan} is a pure description of the faults a run should suffer.
    Each link direction carries a {!dir_profile}: message drop /
    duplication / bounded reorder / latency spikes (the original
    model), plus jitter drawn from a pluggable {!Dist.spec}
    distribution, payload corruption (delivered bits fail the
    receiver's checksum — counted separately from drops but equally
    lost), token-bucket rate limiting with FIFO queueing delay and
    tail-drop, and scheduled blackhole windows.  Plans also carry
    global partition windows and scheduled MB crash / restart points.

    Applying a plan is fully deterministic — every stochastic decision
    draws from a {!Prng} stream derived from the plan seed, the link
    name and the direction, so two runs of the same plan over the same
    traffic make identical fault decisions.  Plans round-trip exactly
    through {!plan_to_string} / {!plan_of_string} (floats print as
    hex literals), so a failing chaos seed can print a plan that
    re-runs verbatim.

    Channels consult a {!link} handle on every send ({!deliveries});
    agents arm their crash schedule once at connect time
    ({!arm_crashes}). *)

type rate_limit = {
  rate_bytes_per_sec : float;  (** Token refill rate. *)
  burst_bytes : int;  (** Bucket depth: bytes admissible instantly. *)
  max_queue : Time.t;
      (** Backlog bound: a message whose queueing delay would exceed
          this is tail-dropped instead of queued. *)
}

type blackhole = { bh_from : Time.t; bh_until : Time.t }
(** Half-open window [\[bh_from, bh_until)] during which every send in
    this direction is silently lost. *)

type dir_profile = {
  drop : float;  (** Probability a message is silently lost. *)
  duplicate : float;  (** Probability a message is delivered twice. *)
  reorder : float;
      (** Probability a delivery is delayed by a uniform draw from
          [\[0, reorder_window)], letting later messages overtake it. *)
  reorder_window : Time.t;
  spike : float;  (** Probability of an additive latency spike. *)
  spike_delay : Time.t;
  jitter : Dist.spec option;
      (** Additive per-delivery jitter drawn from this distribution
          (negative tails clamp to zero).  [None] disables it. *)
  corrupt : float;
      (** Probability the payload is corrupted in flight; the receiver
          discards it on checksum, so the message is lost but counted
          under {!corrupted}, not {!dropped}. *)
  rate : rate_limit option;
      (** Token-bucket shaper for this direction; [None] is unshaped. *)
  blackholes : blackhole list;
}

type link_profile = { fwd : dir_profile; rev : dir_profile }
(** Bidirectional profile: [fwd] governs the nominal forward direction
    of a link (controller → MB for control channels), [rev] the
    reverse.  The two directions fault independently, from independent
    streams. *)

val clean_dir : dir_profile
(** All-zero profile: every message delivered exactly once, on time. *)

val clean_link : link_profile

val symmetric : dir_profile -> link_profile
(** Same profile both ways (streams still independent). *)

type partition = { part_from : Time.t; part_until : Time.t }
(** Half-open window [\[part_from, part_until)] during which every
    message sent on a faulted link is lost (both directions). *)

type crash = {
  crash_at : Time.t;
  restart_after : Time.t option;
      (** [None] means the MB never comes back. *)
}

type plan = {
  seed : int;
  link : link_profile;  (** Applied to every faulted link. *)
  partitions : partition list;
  crashes : (string * crash) list;  (** Keyed by MB name. *)
}

val clean_plan : seed:int -> plan
(** A plan that injects nothing — useful as an oracle baseline. *)

val random_plan : seed:int -> mbs:string list -> horizon:Time.t -> plan
(** The canonical legacy seed-to-plan generator shared by the chaos
    harness and [bench failover --faults]: drop up to 12%, duplication
    up to 10%, reorder up to 30% within [horizon/20], spikes up to 5%
    of [horizon/10], zero to two partitions, and for each named MB a
    40% chance of one crash (75% of which restart).  Both directions
    share one symmetric profile; the netem-class fields stay off. *)

val random_impairment_plan : seed:int -> mbs:string list -> horizon:Time.t -> plan
(** Production-grade generator: independent per-direction profiles
    with distribution-drawn jitter (uniform / exponential / lognormal /
    bounded-Pareto, scaled to [horizon]), a 50% chance of a token-bucket
    shaper per direction, up to 3% corruption, zero to two blackhole
    windows per direction, partitions, and restarting crashes for the
    named MBs.  Every pathology window is bounded, so retried
    operations eventually land — the property long soaks rely on. *)

type t
(** A plan being applied to one engine; owns the fault counters. *)

type direction = [ `Fwd | `Rev ]

type link
(** Per-channel, per-direction fault stream (owns that direction's
    token-bucket state). *)

val create : ?telemetry:Telemetry.t -> Engine.t -> plan -> t
(** With [?telemetry], every realized fault also increments the
    matching ["faults.*"] registry counter (dropped / duplicated /
    delayed / corrupted / throttled / shaper_dropped / blackholed /
    crashes / restarts), mirroring the accessors below. *)

val link : t -> ?dir:direction -> name:string -> unit -> link
(** [link t ~dir ~name] is the fault stream for direction [dir]
    (default [`Fwd]) of the channel called [name].  Streams are
    independent per (name, direction) and of creation order. *)

val deliveries : link -> now:Time.t -> bytes:int -> Time.t list
(** [deliveries l ~now ~bytes] decides the fate of one [bytes]-byte
    message sent at [now]: the empty list loses it (partition,
    blackhole, shaper tail-drop, random drop or corruption — see the
    counters for which), otherwise each element is an extra delay to
    add to one delivery of the message (two elements duplicate it).
    Delays include the shaper's FIFO queueing delay plus jitter. *)

val arm_crashes :
  t -> name:string -> on_crash:(unit -> unit) -> on_restart:(unit -> unit) -> unit
(** Schedule every crash entry for [name] in the plan: [on_crash] runs
    at [crash_at], and [on_restart] runs [restart_after] later when
    present. *)

(** {1 Counters}

    Each loss is counted under exactly one cause; {!lost} is their
    sum.  [delayed] counts deliveries with nonzero reorder / spike /
    jitter delay; [throttled] counts messages the shaper queued
    (admitted with delay). *)

val dropped : t -> int
(** Random drops plus partition losses. *)

val duplicated : t -> int
val delayed : t -> int

val corrupted : t -> int
(** Messages delivered corrupt and discarded by the receiver. *)

val throttled : t -> int
(** Messages that crossed the shaper with a queueing delay. *)

val shaper_dropped : t -> int
(** Messages tail-dropped by a full shaper queue. *)

val blackholed : t -> int
(** Messages lost to a scheduled blackhole window. *)

val crashes_fired : t -> int
val restarts_fired : t -> int

val lost : t -> int
(** [dropped + blackholed + shaper_dropped + corrupted]: every message
    that was sent but never delivered.  Conservation:
    [received = sent - lost + duplicated]. *)

(** {1 Plan printer / parser} *)

val plan_to_string : plan -> string
(** Single-line form whose floats are hex literals;
    [plan_of_string (plan_to_string p) = p] exactly.  MB names in crash
    entries must avoid the separator characters
    [{'|'; ';'; ','; '@'; '~'; '{'; '}'}]. *)

val plan_of_string : string -> plan
(** Inverse of {!plan_to_string}; raises [Failure] on malformed
    input. *)

val pp_plan : Format.formatter -> plan -> unit
