(** Declarative service-level objectives over {!Timeseries} series,
    with multi-window burn-rate evaluation and a breach log.

    An objective names a series, a target (compare each sample, or the
    per-sample delta for cumulative counters, against a threshold) and
    an error budget: the fraction of samples allowed to violate the
    target.  Each evaluation computes, for every configured trailing
    window, the {e burn rate} — observed bad fraction divided by
    budget — and declares a breach when {b all} windows burn at or
    above their thresholds (the classic fast-burn/slow-burn pairing:
    the short window reacts quickly, the long window confirms it is
    not a blip).  Breaches are edge-triggered: one log entry per
    excursion, carrying the virtual timestamp, the offending value and
    the worst burn rate, until the objective recovers. *)

type comparator =
  | Le  (** healthy when [value <= target] *)
  | Ge  (** healthy when [value >= target] *)

(** What is compared against the target. *)
type signal =
  | Level  (** the sample itself (gauges, quantiles) *)
  | Delta
      (** the increase since the previous sample — rate form for
          cumulative counters ("events_dropped rate = 0" is
          [Delta Le 0]) *)

type objective = {
  o_name : string;
  o_series : string;  (** {!Timeseries} series this judges *)
  o_signal : signal;
  o_cmp : comparator;
  o_target : float;
  o_budget : float;  (** allowed bad fraction, in (0, 1] *)
  o_windows : (int * float) list;
      (** [(samples, burn_threshold)] — all must burn to breach *)
}

val objective :
  ?signal:signal ->
  ?budget:float ->
  ?windows:(int * float) list ->
  name:string ->
  series:string ->
  comparator ->
  float ->
  objective
(** Defaults: [signal = Level], [budget = 0.01] (1% of samples),
    [windows = \[(10, 1.0); (100, 1.0)\]].  Windows shorter than the
    series' history so far are evaluated over what exists. *)

type breach = {
  br_objective : string;
  br_series : string;
  br_at : float;  (** virtual time, seconds *)
  br_value : float;  (** offending (most recent bad) value *)
  br_burn : float;  (** worst window burn rate at the transition *)
}

type t

val create : Timeseries.t -> t
val add : t -> objective -> unit

val attach : t -> unit
(** Evaluate after every scrape tick (installs the timeseries
    [on_tick] hook — last attach wins, matching
    {!Timeseries.set_on_tick}). *)

val evaluate : t -> now:Time.t -> unit
(** One evaluation round (what {!attach} runs per tick). *)

val breaches : t -> breach list
(** Edge-triggered breach log, oldest first. *)

val breach_count : t -> int

val set_on_breach : t -> (breach -> unit) -> unit
(** Called on each breach transition — the flight recorder's trigger. *)

val in_breach : t -> string -> bool
(** Is the named objective currently breached? *)

val burn_rate : t -> string -> float
(** Worst-window burn rate of the named objective at its last
    evaluation (0 if unknown or never evaluated). *)

val status_cell : t -> string -> string
(** Dashboard cell for a {e series} name: ["ok"], ["burn r=X"], or
    ["BREACH"] across the objectives judging that series; ["-"] when
    no objective does.  Shaped for {!Timeseries.pp_dash}'s [status]
    argument. *)

val pp_dash : ?width:int -> Format.formatter -> t -> unit
(** {!Timeseries.pp_dash} of the underlying series with this tracker's
    SLO status column, followed by one line per logged breach. *)

val breaches_to_json : t -> string
