(* Hierarchical timer wheel over a pooled, closure-free event store.

   This is the engine's pending-event queue.  Two structural ideas:

   1. Pooled cells.  An event is an integer index into a set of
      parallel arrays (structure-of-arrays: the timestamp lives in a
      dedicated [float array] so it is never boxed), recycled through a
      free list sized by the high-water mark.  Payloads are stored as
      two [Obj.t] slots plus a kind tag; the engine casts them back
      under a typed public API.  Steady-state scheduling therefore
      allocates nothing.

   2. Hierarchical wheel.  Timestamps are quantized to ticks (default
      1us per slot).  A cell whose tick differs from [current] first in
      byte [l] is filed in level [l]'s slot [byte l of tick] — the
      highest-differing-byte rule, which guarantees that every slot at
      level [l] strictly ahead of [current]'s level-[l] index belongs
      to the current revolution, so finding the next event is a bitmap
      scan and an O(1) jump, never a revolution-counting walk.  Four
      levels x 256 slots cover 2^32 ticks (~71 minutes at 1us); cells
      beyond that fall back to the classic binary [Heap] and are merged
      at pop time by (timestamp, sequence) comparison.

   Exact event order is preserved: the global order is (timestamp,
   insertion sequence), with the FIFO tie-break for equal timestamps.
   Tick quantization never reorders — a level-0 slot is materialized
   into the sorted [drain] list before its cells fire, late inserts
   landing on a past tick are clamped into the drain in (at, seq)
   position, and the overflow heap compares with the same key. *)

let levels = 4
let slot_bits = 8
let slots = 1 lsl slot_bits (* 256 *)
let slot_mask = slots - 1

(* 2^32 ticks: cells whose tick differs from [current] at byte >= 4 go
   to the overflow heap. *)
let wheel_horizon = 1 lsl (levels * slot_bits)

(* Bitmaps use 32-bit words: OCaml ints are 63-bit, so packing 64 slots
   per word would need shifts by 63 which are out of range. *)
let bitmap_words = slots / 32

let nil = -1

(* Cell states: bit 0 = queued, bit 1 = cancelled (tombstone). *)
let st_free = 0
let st_queued = 1
let cancelled_bit = 2

let obj_nil = Obj.repr 0

(* Hot paths use unchecked array access: every index is an internal
   invariant — cell indices come off the free list (< cap), slot
   indices are masked with [slot_mask] (< 256), bitmap words are
   [slot lsr 5] (< 8) and levels are literals 0..3.  Cold paths
   (create, grow, purge) keep checked access.  [A.unsafe_get] must be
   applied directly (module alias, never a [let]-bound alias): an
   eta-reduced binding demotes the compiler primitive to a generic
   closure call that tag-dispatches and boxes floats. *)
module A = Array

type t = {
  ticks_per_sec : float;
  (* --- pooled cell store (structure-of-arrays) --- *)
  mutable cap : int;
  mutable at_ : float array; (* unboxed timestamps *)
  mutable seq_ : int array;
  mutable kind_ : int array;
  mutable gen_ : int array; (* bumped on release; stale-handle guard *)
  mutable state_ : int array;
  mutable next_ : int array; (* free list / slot chain / drain chain *)
  mutable pa_ : Obj.t array;
  mutable pb_ : Obj.t array;
  mutable pc_ : Obj.t array;
  mutable free_head : int;
  mutable in_use : int;
  mutable high_water : int;
  mutable next_seq : int;
  (* --- wheel --- *)
  slot_head : int array array; (* levels x slots *)
  bits : int array array; (* levels x bitmap_words, 32 bits per word *)
  mutable current : int; (* tick the wheel has advanced to *)
  mutable wheel_count : int; (* cells in slots + drain *)
  mutable drain : int; (* (at, seq)-sorted chain of due cells *)
  sort_bins : int array; (* scratch for the bottom-up merge sort *)
  mutable overflow : int Heap.t; (* far-future fallback *)
}

let cmp_cells t a b =
  let c = Float.compare (A.unsafe_get t.at_ a) (A.unsafe_get t.at_ b) in
  if c <> 0 then c else Int.compare (A.unsafe_get t.seq_ a) (A.unsafe_get t.seq_ b)

let create ?(slot_us = 1.0) () =
  if slot_us <= 0.0 then invalid_arg "Timer_wheel.create: slot_us must be positive";
  let cap = 256 in
  let t =
    {
      ticks_per_sec = 1e6 /. slot_us;
      cap;
      at_ = Array.make cap 0.0;
      seq_ = Array.make cap 0;
      kind_ = Array.make cap 0;
      gen_ = Array.make cap 0;
      state_ = Array.make cap st_free;
      next_ = Array.init cap (fun i -> if i = cap - 1 then nil else i + 1);
      pa_ = Array.make cap obj_nil;
      pb_ = Array.make cap obj_nil;
      pc_ = Array.make cap obj_nil;
      free_head = 0;
      in_use = 0;
      high_water = 0;
      next_seq = 0;
      slot_head = Array.init levels (fun _ -> Array.make slots nil);
      bits = Array.init levels (fun _ -> Array.make bitmap_words 0);
      current = 0;
      wheel_count = 0;
      drain = nil;
      sort_bins = Array.make 32 nil;
      overflow = Heap.create ~cmp:Int.compare;
    }
  in
  t.overflow <- Heap.create ~cmp:(fun a b -> cmp_cells t a b);
  t

(* ------------------------------------------------------------------ *)
(* Cell pool                                                           *)
(* ------------------------------------------------------------------ *)

let grow t =
  let old = t.cap in
  let cap = old * 2 in
  let grow_int a = let d = Array.make cap 0 in Array.blit a 0 d 0 old; d in
  let grow_obj a = let d = Array.make cap obj_nil in Array.blit a 0 d 0 old; d in
  let at2 = Array.make cap 0.0 in
  Array.blit t.at_ 0 at2 0 old;
  t.at_ <- at2;
  t.seq_ <- grow_int t.seq_;
  t.kind_ <- grow_int t.kind_;
  t.gen_ <- grow_int t.gen_;
  t.state_ <- grow_int t.state_;
  t.next_ <- grow_int t.next_;
  t.pa_ <- grow_obj t.pa_;
  t.pb_ <- grow_obj t.pb_;
  t.pc_ <- grow_obj t.pc_;
  for i = old to cap - 1 do
    t.state_.(i) <- st_free;
    t.next_.(i) <- i + 1
  done;
  t.next_.(cap - 1) <- t.free_head;
  t.free_head <- old;
  t.cap <- cap

let release t i =
  if A.unsafe_get t.state_ i land st_queued = 0 then
    invalid_arg "Timer_wheel.release: cell is not queued";
  A.unsafe_set t.state_ i st_free;
  A.unsafe_set t.gen_ i (A.unsafe_get t.gen_ i + 1);
  (* Drop payload references so the pool never keeps dead objects
     reachable.  [obj_nil] is the immediate 0, so an already-nil slot
     needs no store — and skipping it skips a write-barrier call. *)
  A.unsafe_set t.pa_ i obj_nil;
  if A.unsafe_get t.pb_ i != obj_nil then A.unsafe_set t.pb_ i obj_nil;
  if A.unsafe_get t.pc_ i != obj_nil then A.unsafe_set t.pc_ i obj_nil;
  A.unsafe_set t.next_ i t.free_head;
  t.free_head <- i;
  t.in_use <- t.in_use - 1

(* ------------------------------------------------------------------ *)
(* Bitmaps                                                             *)
(* ------------------------------------------------------------------ *)

let set_bit t l s =
  let words = A.unsafe_get t.bits l in
  let w = s lsr 5 in
  A.unsafe_set words w (A.unsafe_get words w lor (1 lsl (s land 31)))

let clear_bit t l s =
  let words = A.unsafe_get t.bits l in
  let w = s lsr 5 in
  A.unsafe_set words w (A.unsafe_get words w land lnot (1 lsl (s land 31)))

let ctz32 x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Lowest occupied slot index >= [idx] at level [l], or -1. *)
let find_bit_from t l idx =
  if idx >= slots then -1
  else begin
    let words = A.unsafe_get t.bits l in
    let rec go w mask =
      if w >= bitmap_words then -1
      else begin
        let v = A.unsafe_get words w land mask in
        if v <> 0 then (w lsl 5) + ctz32 v else go (w + 1) 0xFFFFFFFF
      end
    in
    go (idx lsr 5) (0xFFFFFFFF lxor ((1 lsl (idx land 31)) - 1))
  end

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

(* Beyond this, [at *. ticks_per_sec] cannot be converted to an int
   tick; such cells live in the overflow heap (which compares raw
   timestamps and never quantizes). *)
let max_tick_f = 4.0e18

let tick_of t i =
  let ft = A.unsafe_get t.at_ i *. t.ticks_per_sec in
  let k = int_of_float ft in
  if k < t.current then t.current else k

(* File cell [i] (tick in the current 2^32 block, >= current) by the
   highest-differing-byte rule. *)
let place t i tick =
  let x = tick lxor t.current in
  let l =
    if x < 1 lsl slot_bits then 0
    else if x < 1 lsl (2 * slot_bits) then 1
    else if x < 1 lsl (3 * slot_bits) then 2
    else 3
  in
  let s = (tick lsr (l * slot_bits)) land slot_mask in
  let heads = A.unsafe_get t.slot_head l in
  A.unsafe_set t.next_ i (A.unsafe_get heads s);
  A.unsafe_set heads s i;
  set_bit t l s

(* Sorted insert into the drain chain; chains are short (one tick's
   worth of same-instant events). *)
let insert_drain t i =
  if t.drain = nil || cmp_cells t i t.drain < 0 then begin
    A.unsafe_set t.next_ i t.drain;
    t.drain <- i
  end
  else begin
    let j = ref t.drain in
    while A.unsafe_get t.next_ !j <> nil && cmp_cells t (A.unsafe_get t.next_ !j) i <= 0 do
      j := A.unsafe_get t.next_ !j
    done;
    A.unsafe_set t.next_ i (A.unsafe_get t.next_ !j);
    A.unsafe_set t.next_ !j i
  end

let enqueue t i =
  let ft = A.unsafe_get t.at_ i *. t.ticks_per_sec in
  if ft >= max_tick_f then Heap.push t.overflow i
  else begin
    let tick = int_of_float ft in
    if t.wheel_count = 0 && tick lxor t.current < slots then begin
      (* Empty wheel, cell within the current level-0 block: advancing
         [current] to the cell's tick is exactly the jump
         [ensure_drain] would make at pop time, done while it is free —
         the cell goes straight to the drain and its pop touches
         neither bitmaps nor slots.  This is the single event-in-flight
         cycle (channel delivery chains, dp/cpu busy timers), the
         engine's most common state.  The jump is capped to the block
         so one idle far-future timer cannot drag [current] ahead of
         every near-future insert that follows. *)
      if tick > t.current then t.current <- tick;
      A.unsafe_set t.next_ i nil;
      t.drain <- i;
      t.wheel_count <- 1
    end
    else if tick <= t.current then begin
      (* Late or due: joins the drain in (at, seq) position rather than
         filing behind [current].  Keeping clamped cells out of the
         slots keeps every slot's bitmap tick lower bound truthful,
         which [may_have_before]'s soundness proof depends on. *)
      insert_drain t i;
      t.wheel_count <- t.wheel_count + 1
    end
    else if tick lxor t.current < wheel_horizon then begin
      place t i tick;
      t.wheel_count <- t.wheel_count + 1
    end
    else Heap.push t.overflow i
  end

let alloc t ~at ~kind ~a ~b ~c =
  if t.free_head = nil then grow t;
  let i = t.free_head in
  if A.unsafe_get t.state_ i <> st_free then
    invalid_arg "Timer_wheel.alloc: corrupt free list";
  t.free_head <- A.unsafe_get t.next_ i;
  A.unsafe_set t.state_ i st_queued;
  A.unsafe_set t.at_ i at;
  A.unsafe_set t.seq_ i t.next_seq;
  t.next_seq <- t.next_seq + 1;
  A.unsafe_set t.kind_ i kind;
  (* Free cells have nil payload slots (see [release]); [obj_nil] is
     the immediate 0, so storing a 0-valued payload is a no-op and the
     write (with its barrier) can be skipped. *)
  A.unsafe_set t.pa_ i a;
  if b != obj_nil then A.unsafe_set t.pb_ i b;
  if c != obj_nil then A.unsafe_set t.pc_ i c;
  t.in_use <- t.in_use + 1;
  if t.in_use > t.high_water then t.high_water <- t.in_use;
  enqueue t i;
  i

(* ------------------------------------------------------------------ *)
(* Advancing                                                           *)
(* ------------------------------------------------------------------ *)

let detach t l s =
  let heads = A.unsafe_get t.slot_head l in
  let h = A.unsafe_get heads s in
  A.unsafe_set heads s nil;
  clear_bit t l s;
  h

(* Iterative bottom-up merge sort of a cell chain by (at, seq), using
   the persistent scratch bins (no allocation). *)
let merge t a b =
  let a = ref a and b = ref b in
  let head = ref nil and tail = ref nil in
  let append n =
    if !tail = nil then begin head := n; tail := n end
    else begin A.unsafe_set t.next_ !tail n; tail := n end
  in
  while !a <> nil && !b <> nil do
    if cmp_cells t !a !b <= 0 then begin
      let n = !a in
      a := A.unsafe_get t.next_ n;
      append n
    end
    else begin
      let n = !b in
      b := A.unsafe_get t.next_ n;
      append n
    end
  done;
  let rest = if !a <> nil then !a else !b in
  if !tail = nil then rest
  else begin
    A.unsafe_set t.next_ !tail rest;
    !head
  end

let sort t head =
  if head = nil || t.next_.(head) = nil then head
  else begin
    let bins = t.sort_bins in
    let nbins = Array.length bins in
    let node = ref head in
    while !node <> nil do
      let n = !node in
      node := A.unsafe_get t.next_ n;
      A.unsafe_set t.next_ n nil;
      let run = ref n in
      let i = ref 0 in
      while !i < nbins - 1 && bins.(!i) <> nil do
        run := merge t bins.(!i) !run;
        bins.(!i) <- nil;
        incr i
      done;
      bins.(!i) <- (if bins.(!i) = nil then !run else merge t bins.(!i) !run)
    done;
    let acc = ref nil in
    for i = 0 to nbins - 1 do
      if bins.(i) <> nil then begin
        acc := (if !acc = nil then bins.(i) else merge t bins.(i) !acc);
        bins.(i) <- nil
      end
    done;
    !acc
  end

(* Re-file every cell of slot (l, s) after [current] moved into that
   slot's block: each now differs from [current] in a byte below [l],
   so it drops to a lower level (or level 0). *)
let cascade t l s =
  let n = ref (detach t l s) in
  while !n <> nil do
    let i = !n in
    n := A.unsafe_get t.next_ i;
    place t i (tick_of t i)
  done

(* Make [drain] non-empty if the wheel holds any cell: find the lowest
   occupied level-0 slot at or ahead of [current]; if level 0 is clear,
   jump to the next occupied slot of the lowest occupied level and
   cascade it down, then retry.  The highest-differing-byte invariant
   means a level-[l>=1] scan can start at index+1 (the slot at
   [current]'s own index would have been filed lower) and nothing ever
   hides behind [current]. *)
let rec ensure_drain t =
  if t.drain = nil && t.wheel_count > 0 then begin
    let s0 = find_bit_from t 0 (t.current land slot_mask) in
    if s0 >= 0 then begin
      (* Shifts are right-associative in OCaml: the truncation must be
         parenthesized or [lsr above lsl above] shifts by [above lsl
         above]. *)
      t.current <- ((t.current lsr slot_bits) lsl slot_bits) lor s0;
      t.drain <- sort t (detach t 0 s0)
    end
    else begin
      let rec climb l =
        if l >= levels then
          invalid_arg "Timer_wheel: occupancy bitmaps inconsistent with count"
        else begin
          let shift = l * slot_bits in
          let il = (t.current lsr shift) land slot_mask in
          let j = find_bit_from t l (il + 1) in
          if j >= 0 then begin
            let above = shift + slot_bits in
            t.current <- ((t.current lsr above) lsl above) lor (j lsl shift);
            cascade t l j
          end
          else climb (l + 1)
        end
      in
      climb 1;
      ensure_drain t
    end
  end

(* ------------------------------------------------------------------ *)
(* Queue interface                                                     *)
(* ------------------------------------------------------------------ *)

let size t = t.wheel_count + Heap.size t.overflow

(* Conservative boundary probe: could some queued cell have
   [at <= limit]?  Never cascades.  [run ~until] must not answer its
   stopping question with {!peek}: peeking past the window would
   materialize (cascade) a far-future slot and drag [current] up to
   it, after which every near-future insert lands behind [current] and
   degenerates into a sorted drain insert.  A slot's placement gives a
   free lower bound on its cells' ticks — level [l] slot [j] holds
   ticks >= block base with byte [l] = [j] and lower bytes zero — and
   ticks only ever truncate [at *. ticks_per_sec] downward, so
   [lb > limit_tick] proves every wheel cell is strictly later than
   [limit]. *)
let may_have_before t limit =
  (if t.drain <> nil then A.unsafe_get t.at_ t.drain <= limit
   else if t.wheel_count = 0 then false
   else begin
     let lf = limit *. t.ticks_per_sec in
     lf >= max_tick_f
     ||
     let limit_tick = int_of_float lf in
     let s0 = find_bit_from t 0 (t.current land slot_mask) in
     if s0 >= 0 then ((t.current lsr slot_bits) lsl slot_bits) lor s0 <= limit_tick
     else begin
       let rec climb l =
         if l >= levels then false
         else begin
           let shift = l * slot_bits in
           let il = (t.current lsr shift) land slot_mask in
           let j = find_bit_from t l (il + 1) in
           if j >= 0 then begin
             let above = shift + slot_bits in
             ((t.current lsr above) lsl above) lor (j lsl shift) <= limit_tick
           end
           else climb (l + 1)
         end
       in
       climb 1
     end
   end)
  || ((not (Heap.is_empty t.overflow)) && A.unsafe_get t.at_ (Heap.peek_exn t.overflow) <= limit)

(* Next cell in (at, seq) order, or [nil].  Non-destructive. *)
let peek t =
  if t.drain = nil && t.wheel_count > 0 then ensure_drain t;
  let w = t.drain in
  if Heap.is_empty t.overflow then w
  else begin
    let h = Heap.peek_exn t.overflow in
    if w = nil then h else if cmp_cells t w h <= 0 then w else h
  end

let pop t =
  let c = peek t in
  if c <> nil then begin
    if c = t.drain then begin
      t.drain <- A.unsafe_get t.next_ c;
      t.wheel_count <- t.wheel_count - 1
    end
    else begin
      ignore (Heap.pop_exn t.overflow);
      (* The wheel is allowed to lag arbitrarily while the heap leads;
         re-sync when it is empty so later near-future inserts still
         land in slots rather than overflowing. *)
      if t.wheel_count = 0 then begin
        let ft = A.unsafe_get t.at_ c *. t.ticks_per_sec in
        if ft < max_tick_f then begin
          let k = int_of_float ft in
          if k > t.current then t.current <- k
        end
      end
    end
  end;
  c

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let at t i = A.unsafe_get t.at_ i
let kind t i = A.unsafe_get t.kind_ i
let gen t i = A.unsafe_get t.gen_ i
let pa t i = A.unsafe_get t.pa_ i
let pb t i = A.unsafe_get t.pb_ i
let pc t i = A.unsafe_get t.pc_ i
let cancelled t i = A.unsafe_get t.state_ i land cancelled_bit <> 0
let set_cancelled t i = A.unsafe_set t.state_ i (A.unsafe_get t.state_ i lor cancelled_bit)
let capacity t = t.cap
let in_use t = t.in_use
let high_water t = t.high_water

(* ------------------------------------------------------------------ *)
(* Tombstone purge                                                     *)
(* ------------------------------------------------------------------ *)

(* Drop every cancelled cell still queued; returns how many were
   dropped.  Called by the engine when tombstones outnumber live
   events. *)
let purge t =
  let dropped = ref 0 in
  let filter head =
    (* Unlink cancelled cells from a chain, releasing them. *)
    let skip i =
      let j = ref i in
      while !j <> nil && t.state_.(!j) land cancelled_bit <> 0 do
        let nxt = t.next_.(!j) in
        release t !j;
        incr dropped;
        j := nxt
      done;
      !j
    in
    let head = skip head in
    let i = ref head in
    while !i <> nil do
      let nxt = skip t.next_.(!i) in
      t.next_.(!i) <- nxt;
      i := nxt
    done;
    head
  in
  let in_wheel_before = !dropped in
  t.drain <- filter t.drain;
  for l = 0 to levels - 1 do
    for s = 0 to slots - 1 do
      if t.slot_head.(l).(s) <> nil then begin
        let h = filter t.slot_head.(l).(s) in
        t.slot_head.(l).(s) <- h;
        if h = nil then clear_bit t l s
      end
    done
  done;
  t.wheel_count <- t.wheel_count - (!dropped - in_wheel_before);
  if not (Heap.is_empty t.overflow) then begin
    let survivors =
      List.filter
        (fun i ->
          if t.state_.(i) land cancelled_bit <> 0 then begin
            release t i;
            incr dropped;
            false
          end
          else true)
        (Heap.to_list t.overflow)
    in
    Heap.clear t.overflow;
    List.iter (fun i -> Heap.push t.overflow i) survivors
  end;
  !dropped
