(* The event loop over the hierarchical timer wheel.

   Cells are popped in exact (timestamp, insertion-sequence) order, so
   behavior is identical to the former binary-heap-of-closures engine:
   same-instant events fire in scheduling order, [run ?until] and
   [step] are unchanged.

   Two scheduling paths share the pooled cell store:

   - [schedule_at]/[schedule_after] keep the general closure API and a
     cancellable handle.  The handle records the cell's generation
     stamp; [release] bumps the stamp before dispatch, so a cancel
     racing a recycled cell is a no-op.

   - [call_at]/[call2_at] are the closure-free hot path: the callback
     and its arguments are stored in the cell's payload slots and the
     dispatch casts them back.  The casts are safe because the typed
     signatures below are the only writers, OCaml's calling convention
     is uniform across value types, and a cell's kind tag selects the
     matching arity at dispatch. *)

module Wheel = Timer_wheel

type t = {
  (* A one-element float array, not a mutable field: a mutable float in
     a mixed record is boxed, which would allocate on every event. *)
  clock_ : float array;
  w : Wheel.t;
  mutable tombstones : int;
  mutable executed : int;
  (* "engine.events" when created with a telemetry instance, the shared
     null sink otherwise — dispatch stays branch-free either way. *)
  ev : Telemetry.counter;
}

type handle = { eng : t; idx : int; gen : int; mutable hc : bool }

type pool_stats = {
  capacity : int;
  free : int;
  queued : int;
  high_water : int;
}

let kind_closure = 0
let kind_call1 = 1
let kind_call2 = 2
let obj_unit = Obj.repr ()

let create ?slot_us ?telemetry () =
  {
    clock_ = [| 0.0 |];
    w = Wheel.create ?slot_us ();
    tombstones = 0;
    executed = 0;
    ev =
      (match telemetry with
      | Some tel -> Telemetry.counter tel "engine.events"
      | None -> Telemetry.null_counter);
  }

let now t : Time.t = t.clock_.(0)

let schedule_at t when_ f =
  if Time.compare when_ (now t) < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let idx =
    Wheel.alloc t.w ~at:when_ ~kind:kind_closure ~a:(Obj.repr f) ~b:obj_unit
      ~c:obj_unit
  in
  { eng = t; idx; gen = Wheel.gen t.w idx; hc = false }

let schedule_after t delay f =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t Time.(now t + delay) f

let call_at : 'a. t -> Time.t -> ('a -> unit) -> 'a -> unit =
 fun t when_ f x ->
  if Time.compare when_ (now t) < 0 then
    invalid_arg "Engine.call_at: time is in the past";
  ignore
    (Wheel.alloc t.w ~at:when_ ~kind:kind_call1 ~a:(Obj.repr f) ~b:(Obj.repr x)
       ~c:obj_unit)

let call_after : 'a. t -> Time.t -> ('a -> unit) -> 'a -> unit =
 fun t delay f x ->
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.call_after: negative delay";
  call_at t Time.(now t + delay) f x

let call2_at : 'a 'b. t -> Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit =
 fun t when_ f x y ->
  if Time.compare when_ (now t) < 0 then
    invalid_arg "Engine.call2_at: time is in the past";
  ignore
    (Wheel.alloc t.w ~at:when_ ~kind:kind_call2 ~a:(Obj.repr f) ~b:(Obj.repr x)
       ~c:(Obj.repr y))

let call2_after : 'a 'b. t -> Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit =
 fun t delay f x y ->
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.call2_after: negative delay";
  call2_at t Time.(now t + delay) f x y

let cancel h =
  h.hc <- true;
  let t = h.eng in
  if Wheel.gen t.w h.idx = h.gen && not (Wheel.cancelled t.w h.idx) then begin
    Wheel.set_cancelled t.w h.idx;
    t.tombstones <- t.tombstones + 1;
    (* Lazy purge: once tombstones outnumber live events, sweep them
       out so the pool shrinks back and pops never wade through a
       majority of corpses.  Amortized O(1) per cancel. *)
    if t.tombstones * 2 > Wheel.size t.w then
      t.tombstones <- t.tombstones - Wheel.purge t.w
  end

let is_cancelled h = h.hc

let pending t = Wheel.size t.w - t.tombstones

let executed t = t.executed

let pool_stats t =
  let capacity = Wheel.capacity t.w in
  let queued = Wheel.in_use t.w in
  { capacity; free = capacity - queued; queued; high_water = Wheel.high_water t.w }

let rec step t =
  let i = Wheel.pop t.w in
  if i < 0 then false
  else if Wheel.cancelled t.w i then begin
    t.tombstones <- t.tombstones - 1;
    Wheel.release t.w i;
    step t
  end
  else begin
    t.clock_.(0) <- Wheel.at t.w i;
    t.executed <- t.executed + 1;
    Telemetry.incr t.ev;
    let a = Wheel.pa t.w i in
    (* Payload reads come first ([release] clears them), release comes
       before dispatch: the callback may schedule (reusing this cell)
       or cancel a stale handle (inert after the gen bump).  Each arm
       reads only the slots its arity uses. *)
    (match Wheel.kind t.w i with
    | 0 ->
      Wheel.release t.w i;
      (Obj.obj a : unit -> unit) ()
    | 1 ->
      let b = Wheel.pb t.w i in
      Wheel.release t.w i;
      (Obj.obj a : Obj.t -> unit) b
    | _ ->
      let b = Wheel.pb t.w i and c = Wheel.pc t.w i in
      Wheel.release t.w i;
      (Obj.obj a : Obj.t -> Obj.t -> unit) b c);
    true
  end

(* Next live (non-cancelled) event, discarding tombstones on the way.
   [run ?until] must decide the boundary on the next event that will
   actually execute: a tombstone at the queue head with [at <= until]
   must not admit a later live event past the limit. *)
let rec peek_live t =
  let i = Wheel.peek t.w in
  if i >= 0 && Wheel.cancelled t.w i then begin
    ignore (Wheel.pop t.w);
    t.tombstones <- t.tombstones - 1;
    Wheel.release t.w i;
    peek_live t
  end
  else i

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
    (* Gate on the cascade-free probe first: peeking past the window
       would materialize far-future wheel slots and drag the wheel's
       position beyond every near-future insert that follows. *)
    let keep_going () =
      Wheel.may_have_before t.w limit
      &&
      let i = peek_live t in
      i >= 0 && Time.compare (Wheel.at t.w i) limit <= 0
    in
    while keep_going () do
      ignore (step t)
    done;
    if Time.compare (now t) limit < 0 then t.clock_.(0) <- limit
