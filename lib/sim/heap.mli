(** Imperative binary min-heap, used as the simulator's pending-event
    queue.

    Elements are ordered by a user-supplied comparison.  Ties are broken
    by insertion order (first-in, first-out), which gives the simulator
    deterministic FIFO semantics for events scheduled at the same
    instant. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val size : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [true] iff [h] holds no elements. *)

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. *)

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it, or [None] if
    [h] is empty. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element, breaking ties in
    insertion order, or returns [None] if [h] is empty. *)

val peek_exn : 'a t -> 'a
(** Like {!peek}, but raises [Invalid_argument] instead of allocating
    an option — for hot loops that already know the heap is non-empty
    (the engine's event loop). *)

val pop_exn : 'a t -> 'a
(** Like {!pop}, but raises [Invalid_argument] on an empty heap instead
    of allocating an option. *)

val clear : 'a t -> unit
(** Remove all elements. *)

val to_list : 'a t -> 'a list
(** Snapshot of the heap contents in unspecified order. *)
