(** Unified telemetry: metric registry + structured trace spans.

    One {!t} instance is shared by the components of a scenario (engine,
    channels, controller, agents, middleboxes); each registers named
    {!counter}s, {!gauge}s and log-2-bucketed latency {!histogram}s and
    stamps {e spans} against the virtual clock.  The design goals, in
    order:

    - {b Zero-alloc hot path.}  [incr]/[add]/[observe]/[span_begin] do
      not allocate: counters and gauges are single mutable immediates,
      histogram state lives in preallocated [int]/[float] arrays, and
      spans are rows of a structure-of-arrays ring buffer with interned
      actor/name strings.

    - {b Bounded memory.}  The span ring overwrites its oldest rows
      once full (an overwritten span's [span_end] is a safe no-op); a
      growable mode backs the unbounded {!Recorder} timeline.

    - {b Causality.}  Every span carries an operation id ([op]); the
      controller stamps southbound requests with a fresh id and agents
      tag their spans with the id of the request being served, so one
      logical operation links across components in the exported trace.

    Handles obtained from a registry stay valid for the registry's
    lifetime; re-requesting a name returns the same metric.  Components
    created without a telemetry instance fall back to the shared
    {!null_counter}/{!null_gauge}/{!null_histogram} sinks, keeping the
    instrumented code branch-free. *)

type t
(** A telemetry instance: metric registry + span ring + op-id source. *)

val create : ?span_capacity:int -> unit -> t
(** Fresh instance.  [span_capacity] bounds the span ring (default
    [4096] rows, rounded up to [16]); the ring's arrays are allocated
    lazily on the first span. *)

(** {1 Counters} *)

type counter
(** A monotone event count. *)

val counter : t -> string -> counter
(** [counter t name] is the counter registered under [name], created on
    first request.  Raises [Invalid_argument] if [name] is already a
    gauge or histogram. *)

val null_counter : counter
(** Shared sink for uninstrumented components: increments land in a
    dummy cell that no snapshot reads. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

(** {1 Gauges} *)

type gauge
(** A current-level measurement; remembers its peak. *)

val gauge : t -> string -> gauge
val null_gauge : gauge

val set_gauge : gauge -> int -> unit
(** Set the current level (peak updated when exceeded). *)

val gauge_value : gauge -> int
val gauge_peak : gauge -> int

(** {1 Histograms}

    Latencies in seconds, bucketed by [floor (log2 nanoseconds)] into
    64 preallocated slots — factor-of-two resolution over [1ns, ∞).
    Quantiles return the {e upper bound} of the containing bucket, so
    [quantile h q] is at least the true q-quantile and less than twice
    it (plus 1ns of integer truncation slack). *)

type histogram

val histogram : t -> string -> histogram
val null_histogram : histogram

val observe : histogram -> float -> unit
(** Record one latency, in seconds.  Negative samples clamp to 0. *)

val observe_n : histogram -> float -> n:int -> unit
(** [observe_n h v ~n] records [n] samples of value [v] with a single
    bucket update — the batch-path form of {!observe}, so histogram
    cost is per batch rather than per packet.  [n <= 0] is a no-op. *)

val observe_count : histogram -> int -> unit
(** Record a dimensionless count (batch occupancy, queue depth):
    encoded as [k] nanoseconds so count [k] lands in bucket
    [floor (log2 k)] and quantiles read back in units where the
    printers say "ns". *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [\[0, 1\]]; [0.0] when empty. *)

(** {1 Removal and reset}

    Scrape sets and MB clone/merge need series lifecycle management:
    a cloned middlebox that is later merged away must not leave its
    metrics in the registry forever (dead series pollute snapshots and
    time-series scrapes). *)

val remove : t -> string -> bool
(** Drop the named metric from the registry; [false] if absent.
    Handles already obtained for it keep working but become detached
    sinks (writes land in the orphaned cell and no longer appear in
    snapshots) — the same contract as {!null_counter}. *)

val reset_counter : counter -> unit
(** Zero a counter in place (registration kept).  Resetting before a
    merge keeps merging associative: a reset series contributes 0 no
    matter how the merge tree is parenthesized. *)

val reset_gauge : gauge -> unit
(** Zero a gauge's level and peak in place. *)

(** {1 Snapshots} *)

type snapshot
(** An immutable copy of every registered metric. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-metric delta: counters and histogram buckets subtract; gauges
    keep [after]'s value and peak (levels do not difference).  Metrics
    absent from [before] pass through unchanged. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Aligned table: counters, gauges, then histograms with
    count/p50/p90/p99/max. *)

val snapshot_to_json : snapshot -> string
(** Compact JSON object
    [{"counters":{..},"gauges":{..},"histograms":{..}}]. *)

(** {2 Snapshot accessors}

    Per-metric reads, used by gates and the shard-merge property tests.
    All return [None] when [name] is absent or registered as a different
    kind. *)

val snap_counter : snapshot -> string -> int option

val snap_gauge : snapshot -> string -> (int * int) option
(** [(value, peak)]. *)

val snap_hist : snapshot -> string -> (int * float * float) option
(** [(count, sum, max)]. *)

val snap_hist_quantile : snapshot -> string -> float -> float option

(** {2 Merging}

    Combining the per-shard registries of a sharded run into one
    aggregate view ({!Sharded_engine.merged_snapshot}). *)

val merge : snapshot -> snapshot -> snapshot
(** [merge a b] combines two snapshots metric-by-metric: counters sum,
    histograms add bucket-wise (counts and sums add, maxima take the
    larger), and gauges keep the {e last writer}'s value — [b]'s — with
    the peak of both.  Metrics present on only one side pass through.
    Merging is associative, and commutative on counters and histograms
    (gauge values are ordered by construction).  Raises
    [Invalid_argument] when the same name has different kinds on the
    two sides. *)

val merge_all : snapshot list -> snapshot
(** Left fold of {!merge}; the empty list yields an empty snapshot. *)

module Registry : sig
  (** Alias namespace for registry-level operations on snapshots. *)

  val merge : snapshot -> snapshot -> snapshot
  val merge_all : snapshot list -> snapshot
end

val pp : Format.formatter -> t -> unit
(** [pp_snapshot] of the current state. *)

(** {1 Trace spans}

    The span ring proper.  {!Recorder} layers the legacy timeline API
    over a growable instance; telemetry-enabled components write to the
    bounded ring inside {!t}. *)

module Trace : sig
  type t

  type span = int
  (** A token for an open span: its absolute row index.  Tokens are
      plain ints so holding one allocates nothing. *)

  val none : span
  (** Inert token; [span_end] on it is a no-op. *)

  val create : ?capacity:int -> ?growable:bool -> unit -> t
  (** Bounded ring of [capacity] rows (default [4096], min [16]) that
      overwrites oldest-first when full, or — with [~growable:true] —
      a doubling array that never discards. *)

  val span_begin :
    t ->
    now:Time.t ->
    actor:string ->
    name:string ->
    ?op:int ->
    ?a0:int ->
    ?a1:int ->
    ?detail:string ->
    unit ->
    span
  (** Open a span at virtual time [now].  [actor] and [name] are
      interned (first use of each distinct string allocates, repeats do
      not).  [op] is the causality id; [a0]/[a1] are free arg slots. *)

  val span_end : t -> now:Time.t -> span -> unit
  (** Close a span.  No-op on {!none} and on spans already overwritten
      by ring wrap-around. *)

  val instant :
    t ->
    now:Time.t ->
    actor:string ->
    name:string ->
    ?op:int ->
    ?a0:int ->
    ?a1:int ->
    ?detail:string ->
    unit ->
    unit
  (** Zero-duration span. *)

  val total : t -> int
  (** Spans ever begun. *)

  val length : t -> int
  (** Spans currently held (≤ capacity in bounded mode). *)

  val overwritten : t -> int
  (** Spans lost to wrap-around ([0] in growable mode). *)

  val lookup_id : t -> string -> int
  (** Interned id of a string, or [-1] if never seen.  Never interns. *)

  val fold :
    t ->
    init:'acc ->
    f:
      ('acc ->
      actor:int ->
      name:int ->
      op:int ->
      a0:int ->
      a1:int ->
      t0:Time.t ->
      t1:Time.t ->
      detail:string ->
      'acc) ->
    'acc
  (** Fold over held rows oldest-first.  [actor]/[name] are interned
      ids (resolve with {!string_of_id}); [t1 < t0] marks a span still
      open. *)

  val string_of_id : t -> int -> string

  val clear : t -> unit
  (** Drop all rows (interned strings are kept). *)

  val export_chrome : t -> out_channel -> unit
  (** Chrome [trace_event] JSON (one process; one thread per actor;
      complete/instant events carrying [op_id] and arg slots) — loads
      in [about:tracing] and Perfetto. *)
end

val trace : t -> Trace.t
(** The bounded span ring owned by this instance. *)

val next_op_id : t -> int
(** Fresh causality id, starting at 1.  Id [0] means "none". *)

val span_begin :
  t ->
  now:Time.t ->
  actor:string ->
  name:string ->
  ?op:int ->
  ?a0:int ->
  ?a1:int ->
  ?detail:string ->
  unit ->
  Trace.span
(** {!Trace.span_begin} on {!trace}. *)

val span_end : t -> now:Time.t -> Trace.span -> unit

val instant :
  t ->
  now:Time.t ->
  actor:string ->
  name:string ->
  ?op:int ->
  ?a0:int ->
  ?a1:int ->
  ?detail:string ->
  unit ->
  unit

val export_chrome : t -> out_channel -> unit
(** {!Trace.export_chrome} on {!trace}. *)
