let exponential g ~mean =
  let u = 1.0 -. Prng.float g 1.0 in
  -.mean *. log u

let uniform g ~lo ~hi = lo +. Prng.float g (hi -. lo)

let pareto g ~shape ~scale =
  let u = 1.0 -. Prng.float g 1.0 in
  scale /. (u ** (1.0 /. shape))

let bounded_pareto g ~shape ~lo ~hi =
  (* Inverse CDF of the Pareto truncated to [lo, hi]. *)
  let u = Prng.float g 1.0 in
  let la = lo ** shape and ha = hi ** shape in
  let x = -.((u *. ha) -. (u *. la) -. ha) /. (ha *. la) in
  x ** (-1.0 /. shape)

let normal g ~mean ~stddev =
  let u1 = 1.0 -. Prng.float g 1.0 in
  let u2 = Prng.float g 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal g ~mu ~sigma = exp (normal g ~mean:mu ~stddev:sigma)

(* Zipf sampling by inversion over a cached cumulative table.  The
   cache is keyed on (n, s); generators in this codebase use a handful
   of distinct configurations, so the table is built once each. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf_table n s =
  match Hashtbl.find_opt zipf_cache (n, s) with
  | Some t -> t
  | None ->
    let t = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int k ** s));
      t.(k - 1) <- !acc
    done;
    (* Normalize to a proper CDF. *)
    let total = t.(n - 1) in
    for k = 0 to n - 1 do
      t.(k) <- t.(k) /. total
    done;
    Hashtbl.replace zipf_cache (n, s) t;
    t

let zipf g ~n ~s =
  assert (n > 0);
  let t = zipf_table n s in
  let u = Prng.float g 1.0 in
  (* Binary search for the first index whose CDF value exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1) + 1

let empirical g ~points =
  let n = Array.length points in
  assert (n > 0);
  let u = Prng.float g 1.0 in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let _, p = points.(mid) in
      if p < u then search (mid + 1) hi else search lo mid
  in
  let i = search 0 (n - 1) in
  if i = 0 then
    let v, p = points.(0) in
    if p <= 0.0 then v else v *. (u /. p)
  else
    let v0, p0 = points.(i - 1) and v1, p1 = points.(i) in
    if p1 <= p0 then v1 else v0 +. ((v1 -. v0) *. ((u -. p0) /. (p1 -. p0)))

(* ------------------------------------------------------------------ *)
(* First-class distribution specs                                      *)
(* ------------------------------------------------------------------ *)

type spec =
  | Constant of float
  | Uniform_spec of { lo : float; hi : float }
  | Exponential_spec of { mean : float }
  | Normal_spec of { mean : float; stddev : float }
  | Lognormal_spec of { mu : float; sigma : float }
  | Pareto_spec of { shape : float; lo : float; hi : float }

let sample g = function
  | Constant v -> v
  | Uniform_spec { lo; hi } -> uniform g ~lo ~hi
  | Exponential_spec { mean } -> exponential g ~mean
  | Normal_spec { mean; stddev } -> normal g ~mean ~stddev
  | Lognormal_spec { mu; sigma } -> lognormal g ~mu ~sigma
  | Pareto_spec { shape; lo; hi } -> bounded_pareto g ~shape ~lo ~hi

let support = function
  | Constant v -> (v, v)
  | Uniform_spec { lo; hi } -> (lo, hi)
  | Exponential_spec _ -> (0.0, infinity)
  | Normal_spec _ -> (neg_infinity, infinity)
  | Lognormal_spec _ -> (0.0, infinity)
  | Pareto_spec { lo; hi; _ } -> (lo, hi)

(* Specs print with hex-float literals ("%h") so that parsing the
   printed form reconstructs bit-identical parameters — a requirement
   of the fault-plan reproducer path, where a failing seed's printed
   plan must re-run verbatim. *)
let spec_to_string = function
  | Constant v -> Printf.sprintf "const(%h)" v
  | Uniform_spec { lo; hi } -> Printf.sprintf "uniform(%h,%h)" lo hi
  | Exponential_spec { mean } -> Printf.sprintf "exp(%h)" mean
  | Normal_spec { mean; stddev } -> Printf.sprintf "normal(%h,%h)" mean stddev
  | Lognormal_spec { mu; sigma } -> Printf.sprintf "lognormal(%h,%h)" mu sigma
  | Pareto_spec { shape; lo; hi } -> Printf.sprintf "pareto(%h,%h,%h)" shape lo hi

let spec_of_string s =
  let fail () = failwith (Printf.sprintf "Dist.spec_of_string: cannot parse %S" s) in
  match (String.index_opt s '(', String.rindex_opt s ')') with
  | Some op, Some cl when cl = String.length s - 1 && op < cl ->
    let name = String.sub s 0 op in
    let args =
      String.split_on_char ',' (String.sub s (op + 1) (cl - op - 1))
      |> List.map (fun a ->
             match float_of_string_opt (String.trim a) with
             | Some f -> f
             | None -> fail ())
    in
    (match (name, args) with
    | "const", [ v ] -> Constant v
    | "uniform", [ lo; hi ] -> Uniform_spec { lo; hi }
    | "exp", [ mean ] -> Exponential_spec { mean }
    | "normal", [ mean; stddev ] -> Normal_spec { mean; stddev }
    | "lognormal", [ mu; sigma ] -> Lognormal_spec { mu; sigma }
    | "pareto", [ shape; lo; hi ] -> Pareto_spec { shape; lo; hi }
    | _ -> fail ())
  | _ -> fail ()

let pp_spec fmt s = Format.pp_print_string fmt (spec_to_string s)

let weighted_index g ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let u = Prng.float g total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
