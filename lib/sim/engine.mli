(** Discrete-event simulation engine.

    The engine owns a virtual clock and a queue of pending events — a
    hierarchical {!Timer_wheel} of pooled cells with a binary-heap
    fallback for the far future.  A component schedules work to run at
    (or after) some simulated time; [run] repeatedly pops the earliest
    event, advances the clock to its timestamp and executes it.  Events
    scheduled for the same instant execute in scheduling order.

    All OpenMB components — middleboxes, the MB controller, switches,
    traffic sources — are driven by one shared engine, which is what
    lets the benches measure protocol latencies deterministically.

    Two scheduling APIs:

    - {!schedule_at}/{!schedule_after} take a closure and return a
      cancellable {!handle} — the general path.

    - {!call_at}/{!call2_at} (and the [_after] variants) take a
      callback and its argument(s) separately, storing both in a
      reusable pooled cell: no closure, no handle, no per-event
      allocation.  Use these on packet-rate paths with a pre-existing
      callback (channel delivery, switch forwarding, trace replay). *)

type t
(** A simulation engine instance. *)

type handle
(** A cancellable reference to a scheduled event. *)

type pool_stats = {
  capacity : int;  (** cells allocated (high-water-mark sized) *)
  free : int;  (** cells on the free list *)
  queued : int;  (** cells holding pending events (incl. tombstones) *)
  high_water : int;  (** max simultaneously queued cells ever *)
}

val create : ?slot_us:float -> ?telemetry:Telemetry.t -> unit -> t
(** Fresh engine with the clock at {!Time.zero} and no pending events.
    [slot_us] is the timer wheel's level-0 slot width in microseconds
    of simulated time (default [1.0]); it affects performance only,
    never event order.  With [?telemetry], every dispatched event
    increments the ["engine.events"] counter. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_at t when_ f] runs [f] when the clock reaches [when_].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> handle
(** [schedule_after t delay f] runs [f] at [now t + delay].  A negative
    [delay] raises [Invalid_argument]. *)

val call_at : t -> Time.t -> ('a -> unit) -> 'a -> unit
(** [call_at t when_ f x] runs [f x] when the clock reaches [when_],
    without allocating a closure or a handle (not cancellable).
    Scheduling in the past raises [Invalid_argument]. *)

val call_after : t -> Time.t -> ('a -> unit) -> 'a -> unit
(** [call_after t delay f x] is [call_at t (now t + delay) f x].  A
    negative [delay] raises [Invalid_argument]. *)

val call2_at : t -> Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit
(** [call2_at t when_ f x y] runs [f x y] at [when_]; the two-argument
    analogue of {!call_at} for callbacks like [receive mb packet]. *)

val call2_after : t -> Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit
(** [call2_after t delay f x y] is [call2_at t (now t + delay) f x y]. *)

val cancel : handle -> unit
(** Cancel a pending event; a no-op if it already ran or was
    cancelled. *)

val is_cancelled : handle -> bool
(** Whether {!cancel} was called on this handle. *)

val pending : t -> int
(** Number of live events still queued.  Cancelled-but-undiscarded
    events are excluded; they are swept out lazily whenever tombstones
    outnumber live events. *)

val executed : t -> int
(** Total events dispatched since [create] (cancelled events are
    discarded, not dispatched). *)

val pool_stats : t -> pool_stats
(** Event-cell pool occupancy; [capacity = free + queued] always. *)

val run : ?until:Time.t -> t -> unit
(** [run t] executes events until the queue drains.  With [?until],
    stops once the next live event would be strictly later than
    [until] and advances the clock to [until]; cancelled events are
    discarded and never count toward the boundary. *)

val step : t -> bool
(** Execute the single earliest pending event.  Returns [false] when
    the queue is empty. *)
