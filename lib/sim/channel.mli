(** Simulated point-to-point message channel.

    Models the UNIX-socket connections between middleboxes and the MB
    controller: messages are delivered in FIFO order after a fixed
    propagation latency plus a size-proportional serialization delay.
    The channel is half-duplex per direction — a large state transfer
    occupying the pipe delays messages queued behind it, which is the
    effect the paper's controller profile (§8.3) attributes to socket
    reads. *)

type 'a t
(** A unidirectional channel carrying ['a] messages. *)

val create :
  Engine.t ->
  ?faults:Faults.link ->
  ?telemetry:Telemetry.t ->
  ?via:(at:Time.t -> ('a -> unit) -> 'a -> unit) ->
  latency:Time.t ->
  bytes_per_sec:float ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create engine ~latency ~bytes_per_sec ~deliver ()] is a channel
    that invokes [deliver msg] on the receiving side once the message
    has crossed.  [bytes_per_sec] must be positive.  With [?faults],
    every send consults the fault stream, which may drop, duplicate or
    further delay the delivery ({!Faults.deliveries}); counters
    ({!bytes_sent}, {!messages_sent}) still count every send.  With
    [?telemetry], sends additionally feed the shared ["channel.msgs"]
    and ["channel.bytes"] registry counters.

    [via] overrides how deliveries are scheduled: instead of the local
    [Engine.call_at engine at deliver msg], the channel hands
    [(at, deliver, msg)] to [via].  This is the cross-shard hook — pass
    a {!Shard.route}'s field to make the delivery execute on the
    receiving component's shard ([Shard.post] clamps the arrival to the
    next epoch barrier when the destination is remote).  The channel's
    own clock, pipe-busy bookkeeping and fault decisions stay on the
    sending side either way. *)

val send : 'a t -> bytes:int -> 'a -> unit
(** [send ch ~bytes msg] enqueues [msg], whose wire representation
    occupies [bytes] bytes, for delivery. *)

val reserve : _ t -> bytes:int -> Time.t
(** [reserve ch ~bytes] occupies the pipe for one [bytes]-sized message
    and returns the time it would arrive, without scheduling a
    delivery.  Counters ({!bytes_sent}, {!messages_sent}, telemetry)
    count the reservation as one send.  This is the batch packet
    path's hook: a whole packet batch crosses as a single message whose
    serialization shares the channel's clock with scalar sends, while
    the caller schedules the delivery (and applies per-member fault
    decisions) itself. *)

val bytes_sent : 'a t -> int
(** Total bytes ever enqueued on this channel. *)

val messages_sent : 'a t -> int
(** Total messages ever enqueued on this channel. *)

val busy_until : 'a t -> Time.t
(** The time at which the pipe becomes idle given what has been sent so
    far; equals the delivery start time available to the next
    message. *)
