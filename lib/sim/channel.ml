type 'a t = {
  engine : Engine.t;
  latency : Time.t;
  bytes_per_sec : float;
  deliver : 'a -> unit;
  (* Delivery scheduler: [None] is the local engine's closure-free
     [call_at]; [Some via] reroutes execution (the cross-shard path). *)
  via : (at:Time.t -> ('a -> unit) -> 'a -> unit) option;
  faults : Faults.link option;
  mutable free_at : Time.t;
  mutable bytes_sent : int;
  mutable messages_sent : int;
  (* Registry-wide delivery counters across every channel sharing the
     telemetry instance; null sinks keep the send path branch-free when
     the channel is uninstrumented. *)
  tel_msgs : Telemetry.counter;
  tel_bytes : Telemetry.counter;
}

let create engine ?faults ?telemetry ?via ~latency ~bytes_per_sec ~deliver () =
  if bytes_per_sec <= 0.0 then invalid_arg "Channel.create: bytes_per_sec must be positive";
  let tel_msgs, tel_bytes =
    match telemetry with
    | Some tel -> (Telemetry.counter tel "channel.msgs", Telemetry.counter tel "channel.bytes")
    | None -> (Telemetry.null_counter, Telemetry.null_counter)
  in
  {
    engine;
    latency;
    bytes_per_sec;
    deliver;
    via;
    faults;
    free_at = Time.zero;
    bytes_sent = 0;
    messages_sent = 0;
    tel_msgs;
    tel_bytes;
  }

(* Occupy the pipe for [bytes] and return the resulting arrival time —
   the timing/counter half of [send], exposed so the batch packet path
   (which delivers a whole [Packet_batch] as one message) shares the
   same serialization clock as scalar sends on the same channel. *)
let reserve ch ~bytes =
  let start = Time.max (Engine.now ch.engine) ch.free_at in
  let transfer = Time.seconds (float_of_int bytes /. ch.bytes_per_sec) in
  let done_sending = Time.(start + transfer) in
  ch.free_at <- done_sending;
  ch.bytes_sent <- ch.bytes_sent + bytes;
  ch.messages_sent <- ch.messages_sent + 1;
  Telemetry.incr ch.tel_msgs;
  Telemetry.add ch.tel_bytes bytes;
  Time.(done_sending + ch.latency)

let send ch ~bytes msg =
  let arrival = reserve ch ~bytes in
  (* The common fault-free local path stays closure-free: the delivery
     callback and message ride in a pooled event cell, so the
     per-message cost is allocation-free.  [via] reroutes the same
     (at, deliver, msg) triple onto another shard's engine. *)
  match ch.faults with
  | None -> (
    match ch.via with
    | None -> Engine.call_at ch.engine arrival ch.deliver msg
    | Some via -> via ~at:arrival ch.deliver msg)
  | Some link ->
    (* Fault decisions are made at send time; extra delays stack on top
       of the normal serialization + propagation arrival, so a reorder
       or spike lets messages queued behind this one overtake it. *)
    List.iter
      (fun extra ->
        let at = Time.(arrival + extra) in
        match ch.via with
        | None -> Engine.call_at ch.engine at ch.deliver msg
        | Some via -> via ~at ch.deliver msg)
      (Faults.deliveries link ~now:(Engine.now ch.engine) ~bytes)

let bytes_sent ch = ch.bytes_sent
let messages_sent ch = ch.messages_sent
let busy_until ch = ch.free_at
