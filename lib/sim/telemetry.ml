(* Metric registry + span ring.

   Hot-path layout notes:

   - [counter]/[gauge] are records of immediate ints, so increments are
     single stores.

   - [histogram] keeps its float accumulators (sum, max) in a float
     array rather than mutable record fields: a mutable float field in
     a mixed record is boxed and every assignment would allocate.

   - The span ring is a structure of arrays (one column per field) so a
     begin/end touches seven flat stores and no per-span block exists.
     A span token is the row's absolute index; with [cap] rows the slot
     is [idx mod cap] and the row is still live iff
     [idx >= total - cap], which makes [span_end] on an overwritten row
     detectable (and a no-op) without generation counters. *)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type counter = { mutable c : int }
type gauge = { mutable g : int; mutable g_peak : int }

let hist_slots = 64

type histogram = {
  buckets : int array;  (* slot i counts samples with floor(log2 ns) = i *)
  fs : float array;  (* [| sum; max |], seconds *)
  mutable n : int;
}

let null_counter = { c = 0 }
let null_gauge = { g = 0; g_peak = 0 }
let null_histogram = { buckets = Array.make hist_slots 0; fs = [| 0.0; 0.0 |]; n = 0 }

let incr c = c.c <- c.c + 1
let add c k = c.c <- c.c + k
let counter_value c = c.c

let set_gauge gg v =
  gg.g <- v;
  if v > gg.g_peak then gg.g_peak <- v

let gauge_value gg = gg.g
let gauge_peak gg = gg.g_peak

(* Highest set bit, tail-recursively: no refs, no allocation. *)
let rec msb acc n = if n <= 1 then acc else msb (acc + 1) (n lsr 1)

let bucket_of_seconds v =
  let ns = int_of_float (v *. 1e9) in
  if ns <= 0 then 0
  else
    let b = msb 0 ns in
    if b >= hist_slots then hist_slots - 1 else b

(* Upper bound of bucket [i] in seconds: 2^(i+1) ns. *)
let bucket_upper i = ldexp 1e-9 (i + 1)

let observe h v =
  let v = if v < 0.0 then 0.0 else v in
  let b = bucket_of_seconds v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.n <- h.n + 1;
  h.fs.(0) <- h.fs.(0) +. v;
  if v > h.fs.(1) then h.fs.(1) <- v

(* Weighted observe for the batch packet path: [n] members of a batch
   share one measured value, so the histogram update is a single bucket
   store instead of [n] — instrumentation cost per batch, not per
   packet. *)
let observe_n h v ~n =
  if n > 0 then begin
    let v = if v < 0.0 then 0.0 else v in
    let b = bucket_of_seconds v in
    h.buckets.(b) <- h.buckets.(b) + n;
    h.n <- h.n + n;
    h.fs.(0) <- h.fs.(0) +. (v *. float_of_int n);
    if v > h.fs.(1) then h.fs.(1) <- v
  end

(* Dimensionless-count histograms (batch occupancy, queue depths): one
   unit is encoded as 1ns so a count of [k] lands in bucket
   [floor (log2 k)] and the pp/quantile machinery reads naturally as
   "units" where it prints "ns". *)
let observe_count h k = observe h (float_of_int k *. 1e-9)

let hist_count h = h.n
let hist_sum h = h.fs.(0)
let hist_max h = h.fs.(1)

let quantile_of_buckets buckets n q =
  if n = 0 then 0.0
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let i = ref 0 and seen = ref 0 in
    (* Walk up the buckets until the cumulative count covers the rank. *)
    while !seen + buckets.(!i) < rank do
      seen := !seen + buckets.(!i);
      i := !i + 1
    done;
    bucket_upper !i
  end

let quantile h q = quantile_of_buckets h.buckets h.n q

(* ------------------------------------------------------------------ *)
(* Trace spans                                                         *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type t = {
    cap : int;
    growable : bool;
    (* Columns; all the same length, 0 until the first span. *)
    mutable col_actor : int array;
    mutable col_name : int array;
    mutable col_op : int array;
    mutable col_a0 : int array;
    mutable col_a1 : int array;
    mutable col_t0 : float array;
    mutable col_t1 : float array;
    mutable col_detail : string array;
    mutable alloc : int;  (* current column length *)
    mutable total : int;  (* spans ever begun *)
    intern : (string, int) Hashtbl.t;
    mutable strings : string array;
    mutable nstrings : int;
  }

  type span = int

  let none = -1

  let create ?(capacity = 4096) ?(growable = false) () =
    let cap = if capacity < 16 then 16 else capacity in
    {
      cap;
      growable;
      col_actor = [||];
      col_name = [||];
      col_op = [||];
      col_a0 = [||];
      col_a1 = [||];
      col_t0 = [||];
      col_t1 = [||];
      col_detail = [||];
      alloc = 0;
      total = 0;
      intern = Hashtbl.create 64;
      strings = Array.make 16 "";
      nstrings = 0;
    }

  let intern t s =
    match Hashtbl.find_opt t.intern s with
    | Some id -> id
    | None ->
      let id = t.nstrings in
      if id = Array.length t.strings then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.strings 0 bigger 0 id;
        t.strings <- bigger
      end;
      t.strings.(id) <- s;
      t.nstrings <- id + 1;
      Hashtbl.add t.intern s id;
      id

  let lookup_id t s = match Hashtbl.find_opt t.intern s with Some id -> id | None -> -1
  let string_of_id t id = t.strings.(id)

  let grow_to t n =
    let grow_int a = Array.append a (Array.make (n - Array.length a) 0) in
    let grow_float a = Array.append a (Array.make (n - Array.length a) 0.0) in
    let grow_str a = Array.append a (Array.make (n - Array.length a) "") in
    t.col_actor <- grow_int t.col_actor;
    t.col_name <- grow_int t.col_name;
    t.col_op <- grow_int t.col_op;
    t.col_a0 <- grow_int t.col_a0;
    t.col_a1 <- grow_int t.col_a1;
    t.col_t0 <- grow_float t.col_t0;
    t.col_t1 <- grow_float t.col_t1;
    t.col_detail <- grow_str t.col_detail;
    t.alloc <- n

  (* Row for the next span: bounded mode wraps (overwriting the row
     [cap] spans back), growable mode doubles before it runs out.  The
     columns start empty so an instance that never traces costs eight
     empty arrays. *)
  let next_slot t =
    if t.growable then begin
      if t.total = t.alloc then grow_to t (if t.alloc = 0 then t.cap else 2 * t.alloc);
      t.total
    end
    else begin
      if t.alloc < t.cap then grow_to t t.cap;
      t.total mod t.cap
    end

  let span_begin t ~now ~actor ~name ?(op = 0) ?(a0 = 0) ?(a1 = 0) ?(detail = "") () =
    let slot = next_slot t in
    t.col_actor.(slot) <- intern t actor;
    t.col_name.(slot) <- intern t name;
    t.col_op.(slot) <- op;
    t.col_a0.(slot) <- a0;
    t.col_a1.(slot) <- a1;
    t.col_t0.(slot) <- now;
    t.col_t1.(slot) <- -1.0;
    t.col_detail.(slot) <- detail;
    let idx = t.total in
    t.total <- idx + 1;
    idx

  let live t idx =
    idx >= 0 && idx < t.total && (t.growable || idx >= t.total - t.cap)

  let span_end t ~now idx =
    if live t idx then begin
      let slot = if t.growable then idx else idx mod t.cap in
      t.col_t1.(slot) <- now
    end

  let instant t ~now ~actor ~name ?op ?a0 ?a1 ?detail () =
    let idx = span_begin t ~now ~actor ~name ?op ?a0 ?a1 ?detail () in
    span_end t ~now idx

  let total t = t.total

  let length t =
    if t.growable then t.total else if t.total < t.cap then t.total else t.cap

  let overwritten t = if t.growable then 0 else max 0 (t.total - t.cap)

  let clear t = t.total <- 0

  let fold t ~init ~f =
    let first = if t.growable then 0 else max 0 (t.total - t.cap) in
    let acc = ref init in
    for idx = first to t.total - 1 do
      let slot = if t.growable then idx else idx mod t.cap in
      acc :=
        f !acc ~actor:t.col_actor.(slot) ~name:t.col_name.(slot)
          ~op:t.col_op.(slot) ~a0:t.col_a0.(slot) ~a1:t.col_a1.(slot)
          ~t0:t.col_t0.(slot) ~t1:t.col_t1.(slot) ~detail:t.col_detail.(slot)
    done;
    !acc

  (* ---------------- Chrome trace_event export ---------------- *)

  let json_escape b s =
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let export_chrome t oc =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    let sep = ref "" in
    let emit_meta id name =
      Buffer.add_string b !sep;
      sep := ",";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\""
           id);
      json_escape b name;
      Buffer.add_string b "\"}}"
    in
    (* Name every thread (= actor) that appears in a held row. *)
    let actors = Array.make t.nstrings false in
    ignore
      (fold t ~init:() ~f:(fun () ~actor ~name:_ ~op:_ ~a0:_ ~a1:_ ~t0:_ ~t1:_ ~detail:_ ->
           actors.(actor) <- true));
    Array.iteri (fun id seen -> if seen then emit_meta id t.strings.(id)) actors;
    ignore
      (fold t ~init:() ~f:(fun () ~actor ~name ~op ~a0 ~a1 ~t0 ~t1 ~detail ->
           Buffer.add_string b !sep;
           sep := ",";
           let ts = t0 *. 1e6 in
           let still_open = t1 < t0 in
           let dur = if still_open then 0.0 else (t1 -. t0) *. 1e6 in
           Buffer.add_string b "{\"name\":\"";
           json_escape b t.strings.(name);
           (* Instants render as "i" so Perfetto draws a marker rather
              than an invisible zero-width slice. *)
           if (not still_open) && t1 = t0 then
             Buffer.add_string b
               (Printf.sprintf "\",\"cat\":\"openmb\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
                  ts actor)
           else
             Buffer.add_string b
               (Printf.sprintf
                  "\",\"cat\":\"openmb\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
                  ts dur actor);
           Buffer.add_string b
             (Printf.sprintf ",\"args\":{\"op_id\":%d,\"a0\":%d,\"a1\":%d" op a0 a1);
           if not (String.equal detail "") then begin
             Buffer.add_string b ",\"detail\":\"";
             json_escape b detail;
             Buffer.add_char b '"'
           end;
           if still_open then Buffer.add_string b ",\"open\":true";
           Buffer.add_string b "}}"));
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
    Buffer.output_buffer oc b
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type metric = Counter of counter | Gauge of gauge | Hist of histogram

type t = {
  metrics : (string, metric) Hashtbl.t;
  tr : Trace.t;
  mutable next_tid : int;
}

let create ?(span_capacity = 4096) () =
  {
    metrics = Hashtbl.create 32;
    tr = Trace.create ~capacity:span_capacity ();
    next_tid = 0;
  }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let register t name make =
  match Hashtbl.find_opt t.metrics name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add t.metrics name m;
    m

let counter t name =
  match register t name (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | m ->
    invalid_arg
      (Printf.sprintf "Telemetry.counter: %S is already a %s" name (kind_name m))

let gauge t name =
  match register t name (fun () -> Gauge { g = 0; g_peak = 0 }) with
  | Gauge g -> g
  | m ->
    invalid_arg (Printf.sprintf "Telemetry.gauge: %S is already a %s" name (kind_name m))

let histogram t name =
  match
    register t name (fun () ->
        Hist { buckets = Array.make hist_slots 0; fs = [| 0.0; 0.0 |]; n = 0 })
  with
  | Hist h -> h
  | m ->
    invalid_arg
      (Printf.sprintf "Telemetry.histogram: %S is already a %s" name (kind_name m))

let remove t name =
  if Hashtbl.mem t.metrics name then begin
    Hashtbl.remove t.metrics name;
    true
  end
  else false

let reset_counter c = c.c <- 0

let reset_gauge gg =
  gg.g <- 0;
  gg.g_peak <- 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snap_metric =
  | Scounter of int
  | Sgauge of { value : int; peak : int }
  | Shist of { buckets : int array; count : int; sum : float; mx : float }

type snapshot = (string * snap_metric) list  (* sorted by name *)

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let s =
        match m with
        | Counter c -> Scounter c.c
        | Gauge g -> Sgauge { value = g.g; peak = g.g_peak }
        | Hist h ->
          Shist { buckets = Array.copy h.buckets; count = h.n; sum = h.fs.(0); mx = h.fs.(1) }
      in
      (name, s) :: acc)
    t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  List.map
    (fun (name, a) ->
      match (List.assoc_opt name before, a) with
      | Some (Scounter b), Scounter a -> (name, Scounter (a - b))
      | Some (Shist b), Shist a ->
        ( name,
          Shist
            {
              buckets = Array.mapi (fun i v -> v - b.buckets.(i)) a.buckets;
              count = a.count - b.count;
              sum = a.sum -. b.sum;
              (* max/min don't difference; keep the after-side view. *)
              mx = a.mx;
            } )
      | _, a -> (name, a))
    after

let snap_quantile buckets count q = quantile_of_buckets buckets count q

let snap_counter snap name =
  match List.assoc_opt name snap with Some (Scounter v) -> Some v | _ -> None

let snap_gauge snap name =
  match List.assoc_opt name snap with
  | Some (Sgauge { value; peak }) -> Some (value, peak)
  | _ -> None

let snap_hist snap name =
  match List.assoc_opt name snap with
  | Some (Shist { count; sum; mx; _ }) -> Some (count, sum, mx)
  | _ -> None

let snap_hist_quantile snap name q =
  match List.assoc_opt name snap with
  | Some (Shist { buckets; count; _ }) -> Some (quantile_of_buckets buckets count q)
  | _ -> None

(* Merge two snapshots metric-by-metric.  Both inputs are sorted by
   name (the [snapshot] invariant), so this is a linear sorted-list
   union; the result keeps the invariant.  Counters and histograms
   combine symmetrically; gauges are levels, which don't sum — the
   right-hand (later) side's value wins, with the peak of both. *)
let merge_metric name a b =
  match (a, b) with
  | Scounter x, Scounter y -> Scounter (x + y)
  | Sgauge x, Sgauge y -> Sgauge { value = y.value; peak = max x.peak y.peak }
  | Shist x, Shist y ->
    Shist
      {
        buckets = Array.mapi (fun i v -> v + y.buckets.(i)) x.buckets;
        count = x.count + y.count;
        sum = x.sum +. y.sum;
        mx = Float.max x.mx y.mx;
      }
  | _ ->
    let kind = function Scounter _ -> "counter" | Sgauge _ -> "gauge" | Shist _ -> "histogram" in
    invalid_arg
      (Printf.sprintf "Telemetry.merge: %S is a %s on one side and a %s on the other"
         name (kind a) (kind b))

let rec merge a b =
  match (a, b) with
  | [], s | s, [] -> s
  | (na, ma) :: ra, (nb, mb) :: rb ->
    let c = String.compare na nb in
    if c < 0 then (na, ma) :: merge ra b
    else if c > 0 then (nb, mb) :: merge a rb
    else (na, merge_metric na ma mb) :: merge ra rb

let merge_all = List.fold_left merge []

module Registry = struct
  let merge = merge
  let merge_all = merge_all
end

let pp_ns fmt v =
  if v < 1e-6 then Format.fprintf fmt "%4.0fns" (v *. 1e9)
  else if v < 1e-3 then Format.fprintf fmt "%4.1fus" (v *. 1e6)
  else if v < 1.0 then Format.fprintf fmt "%4.1fms" (v *. 1e3)
  else Format.fprintf fmt "%4.2fs " v

let pp_snapshot fmt snap =
  let counters = List.filter (fun (_, m) -> match m with Scounter _ -> true | _ -> false) snap
  and gauges = List.filter (fun (_, m) -> match m with Sgauge _ -> true | _ -> false) snap
  and hists = List.filter (fun (_, m) -> match m with Shist _ -> true | _ -> false) snap in
  List.iter
    (function
      | name, Scounter v -> Format.fprintf fmt "%-36s %10d@." name v
      | _ -> ())
    counters;
  List.iter
    (function
      | name, Sgauge { value; peak } ->
        Format.fprintf fmt "%-36s %10d  (peak %d)@." name value peak
      | _ -> ())
    gauges;
  List.iter
    (function
      | name, Shist { buckets; count; sum; mx } ->
        Format.fprintf fmt
          "%-36s %10d  p50 %a p90 %a p99 %a max %a mean %a@." name count pp_ns
          (snap_quantile buckets count 0.5)
          pp_ns
          (snap_quantile buckets count 0.9)
          pp_ns
          (snap_quantile buckets count 0.99)
          pp_ns mx pp_ns
          (if count = 0 then 0.0 else sum /. float_of_int count)
      | _ -> ())
    hists

let snapshot_to_json snap =
  let b = Buffer.create 1024 in
  let esc s =
    let e = Buffer.create (String.length s) in
    Trace.json_escape e s;
    Buffer.contents e
  in
  let section pred =
    let first = ref true in
    List.iter
      (fun (name, m) ->
        match pred m with
        | None -> ()
        | Some payload ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Printf.sprintf "\"%s\":%s" (esc name) payload))
      snap
  in
  Buffer.add_string b "{\"counters\":{";
  section (function Scounter v -> Some (string_of_int v) | _ -> None);
  Buffer.add_string b "},\"gauges\":{";
  section
    (function
      | Sgauge { value; peak } -> Some (Printf.sprintf "{\"value\":%d,\"peak\":%d}" value peak)
      | _ -> None);
  Buffer.add_string b "},\"histograms\":{";
  section
    (function
      | Shist { buckets; count; sum; mx } ->
        Some
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%.9f,\"max\":%.9f,\"p50\":%.9f,\"p90\":%.9f,\"p99\":%.9f}"
             count sum mx
             (snap_quantile buckets count 0.5)
             (snap_quantile buckets count 0.9)
             (snap_quantile buckets count 0.99))
      | _ -> None);
  Buffer.add_string b "}}";
  Buffer.contents b

let pp fmt t = pp_snapshot fmt (snapshot t)

(* ------------------------------------------------------------------ *)
(* Span/trace conveniences                                             *)
(* ------------------------------------------------------------------ *)

let trace t = t.tr

let next_op_id t =
  t.next_tid <- t.next_tid + 1;
  t.next_tid

let span_begin t ~now ~actor ~name ?op ?a0 ?a1 ?detail () =
  Trace.span_begin t.tr ~now ~actor ~name ?op ?a0 ?a1 ?detail ()

let span_end t ~now span = Trace.span_end t.tr ~now span

let instant t ~now ~actor ~name ?op ?a0 ?a1 ?detail () =
  Trace.instant t.tr ~now ~actor ~name ?op ?a0 ?a1 ?detail ()

let export_chrome t oc = Trace.export_chrome t.tr oc
