(** Random-variate distributions used by the traffic generators.

    Each sampler takes the {!Prng.t} explicitly so the caller controls
    which stream the draw comes from. *)

val exponential : Prng.t -> mean:float -> float
(** Exponential variate with the given mean. *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** Uniform variate in [\[lo, hi)]. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** Pareto (type I) variate: minimum value [scale], tail index
    [shape].  Heavy-tailed for [shape <= 2]. *)

val bounded_pareto : Prng.t -> shape:float -> lo:float -> hi:float -> float
(** Pareto variate truncated to [\[lo, hi\]] by inverse-CDF sampling of
    the bounded distribution (no rejection). *)

val lognormal : Prng.t -> mu:float -> sigma:float -> float
(** Log-normal variate with parameters of the underlying normal. *)

val normal : Prng.t -> mean:float -> stddev:float -> float
(** Normal variate (Box–Muller). *)

val zipf : Prng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s], sampled by
    inversion over the precomputed normalization (O(log n) per draw
    after an O(n) table build per call site is avoided by a small
    internal cache keyed on [(n, s)]). *)

val empirical : Prng.t -> points:(float * float) array -> float
(** [empirical g ~points] samples from the CDF given as
    [(value, cumulative_probability)] pairs sorted by probability, with
    linear interpolation between points.  The final pair must have
    cumulative probability [1.0]. *)

val weighted_index : Prng.t -> weights:float array -> int
(** Index [i] chosen with probability proportional to [weights.(i)].
    Weights must be non-negative and not all zero. *)

(** {1 First-class distribution specs}

    A {!spec} is a pure, serializable description of a distribution —
    the pluggable jitter model of {!Faults} impairment profiles.  Specs
    survive a print/parse round trip bit-identically (parameters print
    as hex-float literals), which is what lets a failing chaos-soak
    seed print a fault plan that re-runs verbatim. *)

type spec =
  | Constant of float
  | Uniform_spec of { lo : float; hi : float }
  | Exponential_spec of { mean : float }
  | Normal_spec of { mean : float; stddev : float }
  | Lognormal_spec of { mu : float; sigma : float }
  | Pareto_spec of { shape : float; lo : float; hi : float }
      (** Bounded Pareto on [\[lo, hi\]] (see {!bounded_pareto}). *)

val sample : Prng.t -> spec -> float
(** Draw one variate; dispatches to the matching sampler above. *)

val support : spec -> float * float
(** [(lo, hi)] bounds every {!sample} draw falls within (possibly
    infinite for unbounded distributions). *)

val spec_to_string : spec -> string
(** Compact textual form, e.g. ["uniform(0x1p-3,0x1p-1)"]. *)

val spec_of_string : string -> spec
(** Inverse of {!spec_to_string}; raises [Failure] on malformed input.
    [spec_of_string (spec_to_string s) = s] for every [s]. *)

val pp_spec : Format.formatter -> spec -> unit
