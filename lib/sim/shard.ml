(* One shard: engine + PRNG + telemetry + per-destination outboxes.

   Outbox records store the callback and its arguments as [Obj.t], the
   same closure-free convention as the engine's pooled cells: the typed
   [post]/[post2] signatures are the only writers and [inject] casts
   back under the matching arity.  Outboxes are plain lists kept in
   reverse posting order — cross-shard messages are the rare path, a
   few per epoch against thousands of shard-local events.

   Thread-safety is by ownership, not locking: only the domain running
   a shard touches its engine, PRNG, telemetry or outboxes, and the
   epoch barrier's mutex hand-off is what publishes outbox contents to
   the coordinator ([Sharded_engine]). *)

type omsg = {
  m_at : Time.t;
  m_seq : int;
  m_k : int; (* arity: 1 or 2 *)
  m_f : Obj.t;
  m_x : Obj.t;
  m_y : Obj.t;
}

type t = {
  s_id : int;
  s_shards : int;
  s_engine : Engine.t;
  s_prng : Prng.t;
  s_tel : Telemetry.t;
  out : omsg list array; (* per-destination, reversed *)
  mutable next_seq : int;
  mutable posted : int;
}

let obj_unit = Obj.repr ()

let create ?slot_us ?span_capacity ~id ~shards ~prng () =
  let tel = Telemetry.create ?span_capacity () in
  {
    s_id = id;
    s_shards = shards;
    s_engine = Engine.create ?slot_us ~telemetry:tel ();
    s_prng = prng;
    s_tel = tel;
    out = Array.make shards [];
    next_seq = 0;
    posted = 0;
  }

let id t = t.s_id
let shards t = t.s_shards
let engine t = t.s_engine
let prng t = t.s_prng
let telemetry t = t.s_tel
let posted t = t.posted

let check_dst t dst =
  if dst < 0 || dst >= t.s_shards then
    invalid_arg (Printf.sprintf "Shard.post: destination %d out of range" dst)

let enqueue t ~dst ~at ~k ~f ~x ~y =
  check_dst t dst;
  if Time.compare at (Engine.now t.s_engine) < 0 then
    invalid_arg "Shard.post: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.posted <- t.posted + 1;
  t.out.(dst) <- { m_at = at; m_seq = seq; m_k = k; m_f = f; m_x = x; m_y = y } :: t.out.(dst)

let post : 'a. t -> dst:int -> at:Time.t -> ('a -> unit) -> 'a -> unit =
 fun t ~dst ~at f x ->
  if dst = t.s_id then Engine.call_at t.s_engine at f x
  else enqueue t ~dst ~at ~k:1 ~f:(Obj.repr f) ~x:(Obj.repr x) ~y:obj_unit

let post2 : 'a 'b. t -> dst:int -> at:Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit =
 fun t ~dst ~at f x y ->
  if dst = t.s_id then Engine.call2_at t.s_engine at f x y
  else enqueue t ~dst ~at ~k:2 ~f:(Obj.repr f) ~x:(Obj.repr x) ~y:(Obj.repr y)

type route = { route : 'a. at:Time.t -> ('a -> unit) -> 'a -> unit }

let route_to t ~dst = { route = (fun ~at f x -> post t ~dst ~at f x) }

let msg_at m = m.m_at
let msg_seq m = m.m_seq

let drain t ~dst =
  let msgs = t.out.(dst) in
  t.out.(dst) <- [];
  List.rev msgs

let inject t ~at m =
  if m.m_k = 1 then Engine.call_at t.s_engine at (Obj.obj m.m_f : Obj.t -> unit) m.m_x
  else
    Engine.call2_at t.s_engine at
      (Obj.obj m.m_f : Obj.t -> Obj.t -> unit)
      m.m_x m.m_y
