(** Hierarchical timer wheel over a pooled, closure-free event store.

    The engine's pending-event queue.  Events are pooled cells — int
    indices into structure-of-arrays storage — filed into a 4-level,
    256-slot-per-level wheel (default 1us slots, 2^32-tick span) by the
    highest-differing-byte rule, with a binary {!Heap} fallback for
    timestamps beyond the wheel's span.  Cells pop in exact
    (timestamp, insertion-sequence) order, identical to a binary heap
    with FIFO tie-breaking.

    This module is the engine's internals: it stores payloads as
    [Obj.t] and trusts its caller ({!Engine}) to cast them back under
    typed wrappers.  Use {!Engine}, not this, to schedule work. *)

type t

val create : ?slot_us:float -> unit -> t
(** [create ?slot_us ()] is an empty wheel whose level-0 slot width is
    [slot_us] microseconds of simulated time (default [1.0]).  Raises
    [Invalid_argument] if [slot_us <= 0]. *)

val alloc :
  t -> at:Time.t -> kind:int -> a:Obj.t -> b:Obj.t -> c:Obj.t -> int
(** Take a cell from the free list (growing the pool if exhausted),
    fill it, assign the next insertion sequence number and queue it.
    Returns the cell index. *)

val release : t -> int -> unit
(** Return a popped cell to the free list, clearing its payload and
    bumping its generation stamp.  Raises [Invalid_argument] if the
    cell is not queued — a cell can never be live in two schedules. *)

val peek : t -> int
(** Index of the next cell in (timestamp, sequence) order, or [-1].
    Advances the wheel's internal position but removes nothing. *)

val pop : t -> int
(** Remove and return the next cell's index, or [-1] if empty.  The
    caller must {!release} the cell after reading its payload. *)

val size : t -> int
(** Queued cells, including cancelled ones not yet discarded. *)

val may_have_before : t -> Time.t -> bool
(** [may_have_before t limit] is a conservative, cascade-free probe:
    [false] proves no queued cell has [at <= limit]; [true] means one
    may (confirm with {!peek}).  Use it to bound [run ~until] without
    advancing the wheel toward far-future events. *)

val purge : t -> int
(** Drop every queued cell whose cancelled bit is set; returns the
    number dropped. *)

(** {2 Cell accessors} *)

val at : t -> int -> Time.t
val kind : t -> int -> int
val gen : t -> int -> int
val pa : t -> int -> Obj.t
val pb : t -> int -> Obj.t
val pc : t -> int -> Obj.t
val cancelled : t -> int -> bool
val set_cancelled : t -> int -> unit

(** {2 Pool statistics} *)

val capacity : t -> int
val in_use : t -> int
val high_water : t -> int
