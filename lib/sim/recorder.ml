(* Compatibility shim over the telemetry span ring.

   Entries are zero-duration spans in a growable (never-discarding)
   {!Telemetry.Trace}: actor and kind are interned once, so [count] and
   [filter] scan flat int columns instead of walking a cons list, and
   [record] costs a few array stores after the first use of each
   distinct actor/kind string. *)

type entry = { time : Time.t; actor : string; kind : string; detail : string }

type t = { engine : Engine.t; tr : Telemetry.Trace.t }

let create engine = { engine; tr = Telemetry.Trace.create ~capacity:1024 ~growable:true () }

let record t ~actor ~kind ~detail =
  Telemetry.Trace.instant t.tr ~now:(Engine.now t.engine) ~actor ~name:kind ~detail ()

let trace t = t.tr

let entry_of t ~actor ~name ~t0 ~detail =
  {
    time = t0;
    actor = Telemetry.Trace.string_of_id t.tr actor;
    kind = Telemetry.Trace.string_of_id t.tr name;
    detail;
  }

let entries t =
  List.rev
    (Telemetry.Trace.fold t.tr ~init:[]
       ~f:(fun acc ~actor ~name ~op:_ ~a0:_ ~a1:_ ~t0 ~t1:_ ~detail ->
         entry_of t ~actor ~name ~t0 ~detail :: acc))

let filter ?actor ?kind ?since ?until t =
  (* Interned-id comparison: a never-seen actor or kind matches
     nothing, and matching rows avoid per-entry string compares. *)
  let want_actor = match actor with None -> -2 | Some a -> Telemetry.Trace.lookup_id t.tr a
  and want_kind = match kind with None -> -2 | Some k -> Telemetry.Trace.lookup_id t.tr k in
  List.rev
    (Telemetry.Trace.fold t.tr ~init:[]
       ~f:(fun acc ~actor ~name ~op:_ ~a0:_ ~a1:_ ~t0 ~t1:_ ~detail ->
         if
           (want_actor = -2 || want_actor = actor)
           && (want_kind = -2 || want_kind = name)
           && (match since with None -> true | Some s -> Time.compare t0 s >= 0)
           && match until with None -> true | Some u -> Time.compare t0 u <= 0
         then entry_of t ~actor ~name ~t0 ~detail :: acc
         else acc))

let count ?actor ?kind t =
  let want_actor = match actor with None -> -2 | Some a -> Telemetry.Trace.lookup_id t.tr a
  and want_kind = match kind with None -> -2 | Some k -> Telemetry.Trace.lookup_id t.tr k in
  Telemetry.Trace.fold t.tr ~init:0
    ~f:(fun acc ~actor ~name ~op:_ ~a0:_ ~a1:_ ~t0:_ ~t1:_ ~detail:_ ->
      if (want_actor = -2 || want_actor = actor) && (want_kind = -2 || want_kind = name)
      then acc + 1
      else acc)

let pp_entry fmt e =
  Format.fprintf fmt "[%8.3fs] %-16s %-12s %s" (Time.to_seconds e.time) e.actor e.kind
    e.detail

let clear t = Telemetry.Trace.clear t.tr
