(* Epoch-barrier coordinator over per-domain shard engines.

   Determinism argument, in full:

   - Shard-local execution is a single engine run to a horizon —
     sequential and deterministic regardless of which domain performs
     it.

   - Cross-shard messages only move at barriers.  Each destination's
     incoming batch is sorted by (clamped deliver-at, source shard,
     per-source sequence), a total order: deliver-at clamping depends
     only on the epoch grid, source ids are fixed, and sequence
     numbers are per-source counters.  Injection in that order pins
     the engine's FIFO tie-break, so same-instant deliveries execute
     identically however many domains ran the epoch.

   - The epoch grid itself is domain-independent: horizons are
     epoch * k for integer k, and the idle-skip stride evolves as a
     function of (events executed, messages moved) per round — both
     deterministic quantities.

   Hence the run's outcome is a function of (shards, seed, epoch,
   workload) only; [domains] changes wall-clock time, never results.

   The parallel path uses one long-lived worker domain per extra
   domain for the duration of a [run] call, released/collected with a
   generation-counted condition-variable barrier.  The coordinator
   only reads or mutates shard state (drain/inject, executed counts)
   while every worker is parked inside the barrier, so the mutex
   hand-off publishes all shard writes — no other synchronisation
   exists or is needed. *)

type t = {
  sh : Shard.t array;
  epoch : Time.t;
  n_domains : int;
  mutable epoch_idx : int; (* horizons reached: epoch * epoch_idx *)
  mutable rounds : int;
  mutable moved_total : int;
  mutable last_exec : int;
}

let create ?slot_us ?(domains = 1) ?(epoch = Time.ms 1.0) ?(seed = 0) ?span_capacity
    ~shards () =
  if shards < 1 then invalid_arg "Sharded_engine.create: shards must be >= 1";
  if Time.compare epoch Time.zero <= 0 then
    invalid_arg "Sharded_engine.create: epoch must be positive";
  let n_domains = max 1 (min domains shards) in
  (* Shard PRNG streams split off a parent in index order, so stream i
     is a function of (seed, i) alone — never of the domain count. *)
  let parent = Prng.create ~seed in
  let streams = Array.make shards parent in
  (* Explicit index-order loop: Array.init's evaluation order is
     unspecified and each split advances the parent. *)
  for i = 0 to shards - 1 do
    streams.(i) <- Prng.split parent
  done;
  let sh =
    Array.init shards (fun i ->
        Shard.create ?slot_us ?span_capacity ~id:i ~shards ~prng:streams.(i) ())
  in
  { sh; epoch; n_domains; epoch_idx = 0; rounds = 0; moved_total = 0; last_exec = 0 }

let shards t = Array.length t.sh
let domains t = t.n_domains
let epoch_length t = t.epoch

let shard t i =
  if i < 0 || i >= Array.length t.sh then invalid_arg "Sharded_engine.shard: out of range";
  t.sh.(i)

let owner_of_hash t h =
  let n = Array.length t.sh in
  (h land max_int) mod n

let executed t = Array.fold_left (fun acc s -> acc + Engine.executed (Shard.engine s)) 0 t.sh
let pending t = Array.fold_left (fun acc s -> acc + Engine.pending (Shard.engine s)) 0 t.sh
let exchanged t = t.moved_total
let epochs t = t.rounds
let now t = Engine.now (Shard.engine t.sh.(0))

let merged_snapshot t =
  Telemetry.merge_all
    (Array.to_list (Array.map (fun s -> Telemetry.snapshot (Shard.telemetry s)) t.sh))

(* Drain every outbox into its destination, clamped to the horizon and
   totally ordered; returns the number of messages that crossed. *)
let exchange t ~horizon =
  let n = Array.length t.sh in
  let moved = ref 0 in
  for dst = 0 to n - 1 do
    let incoming = ref [] in
    for src = 0 to n - 1 do
      if src <> dst then
        List.iter
          (fun m -> incoming := (Time.max (Shard.msg_at m) horizon, src, m) :: !incoming)
          (Shard.drain t.sh.(src) ~dst)
    done;
    match !incoming with
    | [] -> ()
    | msgs ->
      let arr = Array.of_list msgs in
      Array.sort
        (fun (a1, s1, m1) (a2, s2, m2) ->
          let c = Time.compare a1 a2 in
          if c <> 0 then c
          else
            let c = Int.compare s1 s2 in
            if c <> 0 then c else Int.compare (Shard.msg_seq m1) (Shard.msg_seq m2))
        arr;
      Array.iter
        (fun (at, _, m) ->
          Shard.inject t.sh.(dst) ~at m;
          incr moved)
        arr
  done;
  t.moved_total <- t.moved_total + !moved;
  !moved

(* ------------------------------------------------------------------ *)
(* Worker barrier                                                      *)
(* ------------------------------------------------------------------ *)

type sync = {
  m : Mutex.t;
  cv : Condition.t;
  mutable gen : int; (* bumped by the coordinator to release an epoch *)
  mutable horizon : Time.t;
  mutable quit : bool;
  mutable done_count : int;
}

let run_slice t d horizon =
  let n = Array.length t.sh in
  let i = ref d in
  while !i < n do
    Engine.run ~until:horizon (Shard.engine t.sh.(!i));
    i := !i + t.n_domains
  done

let worker t sync d () =
  let seen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock sync.m;
    while sync.gen = !seen && not sync.quit do
      Condition.wait sync.cv sync.m
    done;
    if sync.quit then begin
      Mutex.unlock sync.m;
      continue_ := false
    end
    else begin
      seen := sync.gen;
      let h = sync.horizon in
      Mutex.unlock sync.m;
      run_slice t d h;
      Mutex.lock sync.m;
      sync.done_count <- sync.done_count + 1;
      Condition.broadcast sync.cv;
      Mutex.unlock sync.m
    end
  done

let max_stride = 1 lsl 16

let run ?until t =
  (* Keep the grid strictly ahead of the clock so repeated runs resume
     cleanly on the same epoch boundaries. *)
  let clock0 = now t in
  let k = int_of_float (Time.to_seconds clock0 /. Time.to_seconds t.epoch) in
  if t.epoch_idx < k then t.epoch_idx <- k;
  let nw = t.n_domains - 1 in
  let sync =
    { m = Mutex.create (); cv = Condition.create (); gen = 0; horizon = Time.zero;
      quit = false; done_count = 0 }
  in
  let workers =
    if nw = 0 then [||] else Array.init nw (fun d -> Domain.spawn (worker t sync (d + 1)))
  in
  let run_all horizon =
    if nw = 0 then run_slice t 0 horizon
    else begin
      Mutex.lock sync.m;
      sync.horizon <- horizon;
      sync.done_count <- 0;
      sync.gen <- sync.gen + 1;
      Condition.broadcast sync.cv;
      Mutex.unlock sync.m;
      run_slice t 0 horizon;
      Mutex.lock sync.m;
      while sync.done_count < nw do
        Condition.wait sync.cv sync.m
      done;
      Mutex.unlock sync.m
    end
  in
  let body () =
    t.last_exec <- executed t;
    let stride = ref 1 in
    let continue_ = ref (pending t > 0) in
    while !continue_ do
      let raw = Time.seconds (Time.to_seconds t.epoch *. float_of_int (t.epoch_idx + !stride)) in
      let horizon, at_limit =
        match until with
        | Some u when Time.compare raw u >= 0 -> (u, true)
        | _ -> (raw, false)
      in
      run_all horizon;
      let moved = exchange t ~horizon in
      t.rounds <- t.rounds + 1;
      let exec = executed t in
      let idle = moved = 0 && exec = t.last_exec in
      t.last_exec <- exec;
      if at_limit then
        (* Horizon pinned at [until]: keep flushing barrier deliveries
           that land at or before the limit, then stop with later
           events left pending. *)
        continue_ := moved > 0
      else begin
        t.epoch_idx <- t.epoch_idx + !stride;
        stride := (if idle then min (!stride * 2) max_stride else 1);
        continue_ := pending t > 0
      end
    done
  in
  Fun.protect body ~finally:(fun () ->
      if nw > 0 then begin
        Mutex.lock sync.m;
        sync.quit <- true;
        Condition.broadcast sync.cv;
        Mutex.unlock sync.m;
        Array.iter Domain.join workers
      end;
      (* Land every clock exactly on [until] (or leave them on the last
         horizon when running to drain). *)
      match until with
      | Some u -> Array.iter (fun s -> Engine.run ~until:u (Shard.engine s)) t.sh
      | None -> ())
