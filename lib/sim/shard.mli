(** One shard of a sharded simulation: a private engine, PRNG stream
    and telemetry registry, plus outboxes toward every other shard.

    A {!Sharded_engine} partitions the flow space across [N] logical
    shards.  Everything a shard owns — its {!Engine} (timer wheel and
    event-cell pools included), its {!Prng} stream, its {!Telemetry}
    registry — is touched only by the domain currently running that
    shard, so shard-local work needs no synchronisation at all.

    Cross-shard traffic goes through {!post}/{!post2}: the message is
    appended to the source shard's outbox for the destination and is
    exchanged at the next {e epoch barrier}, where the coordinator
    merges every destination's incoming messages in deterministic
    [(deliver-at, source-shard, sequence)] order.  A post whose target
    is the local shard short-circuits to a plain engine schedule.

    The creation and exchange entry points ({!create}, {!drain},
    {!inject}) are {!Sharded_engine}'s internals — use that module, not
    this one, to build a sharded simulation. *)

type t
(** A shard handle.  Valid for the lifetime of its sharded engine. *)

val id : t -> int
(** This shard's index in [\[0, shards)]. *)

val shards : t -> int
(** Total logical shards in the sharded engine that owns this shard. *)

val engine : t -> Engine.t
(** The shard-private engine.  Schedule shard-local work here. *)

val prng : t -> Prng.t
(** The shard-private PRNG stream, derived deterministically from the
    sharded engine's seed and this shard's index — independent of the
    domain count. *)

val telemetry : t -> Telemetry.t
(** The shard-private registry; aggregate across shards with
    {!Sharded_engine.merged_snapshot}. *)

val post : t -> dst:int -> at:Time.t -> ('a -> unit) -> 'a -> unit
(** [post src ~dst ~at f x] runs [f x] on shard [dst] no earlier than
    [at].  When [dst] is the local shard this is exactly
    [Engine.call_at]; otherwise the message crosses at the next epoch
    barrier and its delivery time is clamped to the epoch horizon, so
    cross-shard latency is at most one epoch longer than asked.
    Raises [Invalid_argument] if [at] is in the local past or [dst] is
    out of range. *)

val post2 : t -> dst:int -> at:Time.t -> ('a -> 'b -> unit) -> 'a -> 'b -> unit
(** Two-argument analogue of {!post}. *)

type route = { route : 'a. at:Time.t -> ('a -> unit) -> 'a -> unit }
(** A polymorphic posting function toward one fixed destination shard —
    the hook components like {!Channel} and the controller take to make
    their deliveries shard-safe without knowing about shards. *)

val route_to : t -> dst:int -> route
(** [route_to src ~dst] is [{ route = post src ~dst }]. *)

val posted : t -> int
(** Cross-shard messages this shard has posted (local short-circuits
    excluded). *)

(** {2 Sharded-engine internals} *)

type omsg
(** An outbox record: deliver-at time, per-source sequence number and
    the closure-free payload. *)

val msg_at : omsg -> Time.t
val msg_seq : omsg -> int

val create :
  ?slot_us:float ->
  ?span_capacity:int ->
  id:int ->
  shards:int ->
  prng:Prng.t ->
  unit ->
  t

val drain : t -> dst:int -> omsg list
(** Remove and return the outbox toward [dst], in posting order. *)

val inject : t -> at:Time.t -> omsg -> unit
(** Schedule a drained message on this (destination) shard's engine at
    [at], which must not precede the shard's clock. *)
