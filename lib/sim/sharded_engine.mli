(** Sharded multi-domain simulator core.

    Partitions a simulation across [shards] logical {!Shard}s — each
    with its own {!Engine} (timer wheel, event-cell pools), {!Prng}
    stream and {!Telemetry} registry — and runs them on [domains]
    OCaml 5 domains with a deterministic {e epoch-barrier} exchange:

    - Virtual time is cut into epochs of fixed length.  Within an
      epoch every shard runs its own engine up to the epoch horizon,
      completely independently.

    - Cross-shard messages ({!Shard.post}) accumulate in per-source
      outboxes.  At the barrier the coordinator drains them into each
      destination, clamped to the epoch horizon and ordered by
      [(deliver-at, source shard, per-source sequence)] — a total
      order independent of how shards were scheduled onto domains.

    - All shards then advance together into the next epoch.

    Because shard-local execution is sequential and the exchange order
    is total, a seeded run's result depends only on the shard count,
    the seed and the epoch length — {b never on [domains]}: an
    8-domain run is bit-identical to the same workload on 1 domain.
    Epoch length trades barrier overhead against cross-shard latency
    (a cross-shard message arrives at most one epoch late); it never
    affects shard-local event order.

    Consecutive all-idle epochs are skipped geometrically (the horizon
    stride doubles while no events execute and nothing is exchanged,
    and resets to one epoch on any activity), so sparse phases such as
    quiescence waits don't cost one barrier per epoch. *)

type t

val create :
  ?slot_us:float ->
  ?domains:int ->
  ?epoch:Time.t ->
  ?seed:int ->
  ?span_capacity:int ->
  shards:int ->
  unit ->
  t
(** [create ~shards ()] builds [shards] logical shards.

    [domains] (default [1]) is the number of OCaml domains {!run} uses;
    it is capped at [shards].  [epoch] (default 1 ms of simulated
    time) is the barrier interval.  [seed] (default [0]) derives every
    shard's independent PRNG stream.  [slot_us] and [span_capacity]
    are passed through to each shard's engine and telemetry. *)

val shards : t -> int
val domains : t -> int
val epoch_length : t -> Time.t

val shard : t -> int -> Shard.t
(** [shard t i] for [i] in [\[0, shards)]. *)

val owner_of_hash : t -> int -> int
(** [owner_of_hash t h] maps a key hash to its owning shard index —
    the flow-space partition function. *)

val run : ?until:Time.t -> t -> unit
(** Run epochs until every shard's queue drains and no message is in
    flight, or — with [?until] — until the clamped horizon reaches
    [until], leaving later events pending and every shard's clock at
    [until].  With [domains > 1] the epoch bodies execute on spawned
    domains (one worker per domain, shards assigned round-robin);
    workers live for the duration of this call. *)

val now : t -> Time.t
(** The epoch horizon reached so far (every shard's clock after
    {!run} returns). *)

val executed : t -> int
(** Total events dispatched across all shards. *)

val pending : t -> int
(** Live events still queued across all shards. *)

val exchanged : t -> int
(** Cross-shard messages delivered at barriers so far. *)

val epochs : t -> int
(** Barrier rounds run so far (idle-skipped epochs count once). *)

val merged_snapshot : t -> Telemetry.snapshot
(** {!Telemetry.merge} of every shard's registry, shard 0 first. *)
