(* tc-netem-class deterministic impairment: per-direction profiles with
   pluggable jitter distributions, token-bucket rate shaping with
   queueing delay, payload corruption, scheduled blackhole windows —
   on top of the original drop/duplicate/reorder/spike plans, global
   partitions and MB crash schedules.  Every stochastic decision draws
   from a per-link Prng stream derived from the plan seed, so a plan is
   a pure value and applying it twice gives identical fault decisions. *)

type rate_limit = {
  rate_bytes_per_sec : float;
  burst_bytes : int;
  max_queue : Time.t;
}

type blackhole = { bh_from : Time.t; bh_until : Time.t }

type dir_profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_window : Time.t;
  spike : float;
  spike_delay : Time.t;
  jitter : Dist.spec option;
  corrupt : float;
  rate : rate_limit option;
  blackholes : blackhole list;
}

type link_profile = { fwd : dir_profile; rev : dir_profile }

let clean_dir =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_window = Time.zero;
    spike = 0.0;
    spike_delay = Time.zero;
    jitter = None;
    corrupt = 0.0;
    rate = None;
    blackholes = [];
  }

let clean_link = { fwd = clean_dir; rev = clean_dir }
let symmetric d = { fwd = d; rev = d }

type partition = { part_from : Time.t; part_until : Time.t }
type crash = { crash_at : Time.t; restart_after : Time.t option }

type plan = {
  seed : int;
  link : link_profile;
  partitions : partition list;
  crashes : (string * crash) list;
}

let clean_plan ~seed = { seed; link = clean_link; partitions = []; crashes = [] }

type t = {
  engine : Engine.t;
  plan : plan;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable corrupted : int;
  mutable throttled : int;
  mutable shaper_dropped : int;
  mutable blackholed : int;
  mutable crashes_fired : int;
  mutable restarts_fired : int;
  (* Registry mirrors of the per-instance counters above, so a chaos
     run's telemetry snapshot shows realized faults without reaching
     for the Faults handle.  Null sinks when uninstrumented. *)
  tel_dropped : Telemetry.counter;
  tel_duplicated : Telemetry.counter;
  tel_delayed : Telemetry.counter;
  tel_corrupted : Telemetry.counter;
  tel_throttled : Telemetry.counter;
  tel_shaper_dropped : Telemetry.counter;
  tel_blackholed : Telemetry.counter;
  tel_crashes : Telemetry.counter;
  tel_restarts : Telemetry.counter;
}

type direction = [ `Fwd | `Rev ]

type link = {
  owner : t;
  rng : Prng.t;
  prof : dir_profile;
  (* Token-bucket state when the direction is rate-limited.  [tokens]
     may go negative: a message that over-draws the bucket is queued —
     it borrows future tokens and carries the corresponding queueing
     delay, so back-to-back sends serialize FIFO through the shaper. *)
  mutable tokens : float;
  mutable tokens_at : Time.t;
}

let create ?telemetry engine plan =
  let c name =
    match telemetry with
    | Some tel -> Telemetry.counter tel name
    | None -> Telemetry.null_counter
  in
  {
    engine;
    plan;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    corrupted = 0;
    throttled = 0;
    shaper_dropped = 0;
    blackholed = 0;
    crashes_fired = 0;
    restarts_fired = 0;
    tel_dropped = c "faults.dropped";
    tel_duplicated = c "faults.duplicated";
    tel_delayed = c "faults.delayed";
    tel_corrupted = c "faults.corrupted";
    tel_throttled = c "faults.throttled";
    tel_shaper_dropped = c "faults.shaper_dropped";
    tel_blackholed = c "faults.blackholed";
    tel_crashes = c "faults.crashes";
    tel_restarts = c "faults.restarts";
  }

(* Each link draws from its own stream, seeded from the plan seed and
   the link name, so the fault pattern on one channel does not depend
   on traffic volume (and hence draw order) on any other, nor on the
   order links are created in.  The two directions of a name are
   distinct streams. *)
let link t ?(dir : direction = `Fwd) ~name () =
  let prof =
    match dir with `Fwd -> t.plan.link.fwd | `Rev -> t.plan.link.rev
  in
  let dir_salt = match dir with `Fwd -> 0 | `Rev -> 0x5A5A5A in
  {
    owner = t;
    rng = Prng.create ~seed:(t.plan.seed lxor Hashtbl.hash name lxor dir_salt);
    prof;
    tokens =
      (match prof.rate with Some r -> float_of_int r.burst_bytes | None -> 0.0);
    tokens_at = Time.zero;
  }

let in_partition t now =
  List.exists
    (fun p -> Time.compare now p.part_from >= 0 && Time.compare now p.part_until < 0)
    t.plan.partitions

let in_blackhole l now =
  List.exists
    (fun b -> Time.compare now b.bh_from >= 0 && Time.compare now b.bh_until < 0)
    l.prof.blackholes

(* Token-bucket admission for [bytes] at [now]: [Ok delay] admits the
   message with a FIFO queueing delay (zero when tokens cover it),
   [Error ()] drops it because its queueing delay would exceed the
   profile's backlog bound (a full shaper queue tail-drops). *)
let shaper_admit l ~now ~bytes =
  match l.prof.rate with
  | None -> Ok Time.zero
  | Some r ->
    let elapsed = Time.to_seconds Time.(now - l.tokens_at) in
    let refilled = l.tokens +. (r.rate_bytes_per_sec *. Float.max 0.0 elapsed) in
    l.tokens <- Float.min (float_of_int r.burst_bytes) refilled;
    l.tokens_at <- Time.max now l.tokens_at;
    let b = float_of_int bytes in
    if l.tokens >= b then begin
      l.tokens <- l.tokens -. b;
      Ok Time.zero
    end
    else begin
      let wait = (b -. l.tokens) /. r.rate_bytes_per_sec in
      if wait > Time.to_seconds r.max_queue then Error ()
      else begin
        l.tokens <- l.tokens -. b;
        Ok (Time.seconds wait)
      end
    end

(* Per-delivery extra delay: legacy reorder window and spike, plus one
   draw from the profile's jitter distribution (negative tails clamp to
   zero — jitter only ever delays). *)
let jitter l =
  let p = l.prof in
  let reorder =
    if Prng.chance l.rng p.reorder then
      Time.seconds (Prng.float l.rng (Time.to_seconds p.reorder_window))
    else Time.zero
  in
  let spiked =
    if Prng.chance l.rng p.spike then Time.(reorder + p.spike_delay) else reorder
  in
  let d =
    match p.jitter with
    | None -> spiked
    | Some spec -> Time.(spiked + seconds (Float.max 0.0 (Dist.sample l.rng spec)))
  in
  if Time.compare d Time.zero > 0 then begin
    l.owner.delayed <- l.owner.delayed + 1;
    Telemetry.incr l.owner.tel_delayed
  end;
  d

(* Decide the fate of one [bytes]-byte message sent at [now].  The
   stages model the path of a real impaired link, in order: a global
   partition or a scheduled blackhole window swallows the send before
   it reaches the wire; the token-bucket shaper either queues it
   (adding FIFO delay) or tail-drops it; random loss drops it in the
   pipe; corruption delivers garbage the receiver's checksum discards
   (counted separately, but equally lost); survivors pick up jitter,
   and a duplicate travels with its own jitter draw. *)
let deliveries l ~now ~bytes =
  let t = l.owner in
  let p = l.prof in
  if in_partition t now then begin
    t.dropped <- t.dropped + 1;
    Telemetry.incr t.tel_dropped;
    []
  end
  else if in_blackhole l now then begin
    t.blackholed <- t.blackholed + 1;
    Telemetry.incr t.tel_blackholed;
    []
  end
  else
    match shaper_admit l ~now ~bytes with
    | Error () ->
      t.shaper_dropped <- t.shaper_dropped + 1;
      Telemetry.incr t.tel_shaper_dropped;
      []
    | Ok queue_delay ->
      if Time.compare queue_delay Time.zero > 0 then begin
        t.throttled <- t.throttled + 1;
        Telemetry.incr t.tel_throttled
      end;
      if Prng.chance l.rng p.drop then begin
        t.dropped <- t.dropped + 1;
        Telemetry.incr t.tel_dropped;
        []
      end
      else if Prng.chance l.rng p.corrupt then begin
        t.corrupted <- t.corrupted + 1;
        Telemetry.incr t.tel_corrupted;
        []
      end
      else begin
        let first = Time.(queue_delay + jitter l) in
        if Prng.chance l.rng p.duplicate then begin
          t.duplicated <- t.duplicated + 1;
          Telemetry.incr t.tel_duplicated;
          [ first; Time.(queue_delay + jitter l) ]
        end
        else [ first ]
      end

let arm_crashes t ~name ~on_crash ~on_restart =
  List.iter
    (fun (n, c) ->
      if String.equal n name then
        (* Clamp: the MB may be connected after the plan's crash point,
           in which case it goes down immediately. *)
        Engine.call_at t.engine
          (Time.max c.crash_at (Engine.now t.engine))
          (fun () ->
            t.crashes_fired <- t.crashes_fired + 1;
            Telemetry.incr t.tel_crashes;
            on_crash ();
            match c.restart_after with
            | None -> ()
            | Some d ->
              Engine.call_after t.engine d
                (fun () ->
                  t.restarts_fired <- t.restarts_fired + 1;
                  Telemetry.incr t.tel_restarts;
                  on_restart ())
                ())
          ())
    t.plan.crashes

let dropped t = t.dropped
let duplicated t = t.duplicated
let delayed t = t.delayed
let corrupted t = t.corrupted
let throttled t = t.throttled
let shaper_dropped t = t.shaper_dropped
let blackholed t = t.blackholed
let crashes_fired t = t.crashes_fired
let restarts_fired t = t.restarts_fired
let lost t = t.dropped + t.blackholed + t.shaper_dropped + t.corrupted

(* ------------------------------------------------------------------ *)
(* Plan printer / parser: exact round trip                              *)
(* ------------------------------------------------------------------ *)

(* Every float (including Time.t, printed in seconds) uses the "%h"
   hex-float literal form, which float_of_string reads back
   bit-identically — so a printed plan re-runs verbatim.  Separators
   are layered (top level '|', dir fields ';', list elements ',') so no
   quoting is needed; MB names in crash entries must avoid them. *)

let time_str t = Printf.sprintf "%h" (Time.to_seconds t)

let rate_to_string = function
  | None -> "none"
  | Some r ->
    Printf.sprintf "tb(%h,%d,%s)" r.rate_bytes_per_sec r.burst_bytes
      (time_str r.max_queue)

let window_to_string ~from_ ~until =
  Printf.sprintf "%s..%s" (time_str from_) (time_str until)

let dir_to_string d =
  Printf.sprintf
    "dir{drop=%h;dup=%h;reorder=%h;rwin=%s;spike=%h;sdelay=%s;jitter=%s;corrupt=%h;rate=%s;bh=[%s]}"
    d.drop d.duplicate d.reorder (time_str d.reorder_window) d.spike
    (time_str d.spike_delay)
    (match d.jitter with None -> "none" | Some s -> Dist.spec_to_string s)
    d.corrupt (rate_to_string d.rate)
    (String.concat ","
       (List.map (fun b -> window_to_string ~from_:b.bh_from ~until:b.bh_until) d.blackholes))

(* '~' separates crash_at from restart_after: it can never appear in a
   hex-float literal (unlike '+', which shows up in "p+NN" exponents). *)
let crash_to_string (name, c) =
  Printf.sprintf "%s@%s~%s" name (time_str c.crash_at)
    (match c.restart_after with None -> "never" | Some d -> time_str d)

let plan_to_string p =
  Printf.sprintf "plan{seed=%d|fwd=%s|rev=%s|parts=[%s]|crashes=[%s]}" p.seed
    (dir_to_string p.link.fwd) (dir_to_string p.link.rev)
    (String.concat ","
       (List.map
          (fun w -> window_to_string ~from_:w.part_from ~until:w.part_until)
          p.partitions))
    (String.concat "," (List.map crash_to_string p.crashes))

let pp_plan fmt p = Format.pp_print_string fmt (plan_to_string p)

let parse_fail what s =
  failwith (Printf.sprintf "Faults.plan_of_string: bad %s in %S" what s)

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> parse_fail what s

let parse_time what s = Time.seconds (parse_float what s)

(* "prefix{body}" -> body *)
let unwrap ~prefix s =
  let n = String.length s and pn = String.length prefix in
  if n >= pn + 2 && String.sub s 0 pn = prefix && s.[pn] = '{' && s.[n - 1] = '}' then
    String.sub s (pn + 1) (n - pn - 2)
  else parse_fail (prefix ^ "{...}") s

(* "[a,b,...]" -> ["a"; "b"; ...] (empty list for "[]") *)
let parse_list what s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then parse_fail what s
  else
    let body = String.sub s 1 (n - 2) in
    if String.trim body = "" then [] else String.split_on_char ',' body

let parse_window what s =
  match
    (* Hex-float literals never contain "..": the mantissa holds at most
       one '.' followed by hex digits, and the exponent is "p±digits". *)
    let rec find i =
      if i + 1 >= String.length s then None
      else if s.[i] = '.' && s.[i + 1] = '.' then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> parse_fail what s
  | Some i ->
    ( parse_time what (String.sub s 0 i),
      parse_time what (String.sub s (i + 2) (String.length s - i - 2)) )

let parse_assoc what s =
  match String.index_opt s '=' with
  | None -> parse_fail what s
  | Some i ->
    (String.trim (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1))

let parse_rate s =
  if String.trim s = "none" then None
  else
    let body = String.trim s in
    let n = String.length body in
    if n < 4 || String.sub body 0 3 <> "tb(" || body.[n - 1] <> ')' then
      parse_fail "rate" s
    else
      match String.split_on_char ',' (String.sub body 3 (n - 4)) with
      | [ rate; burst; queue ] ->
        Some
          {
            rate_bytes_per_sec = parse_float "rate" rate;
            burst_bytes = int_of_string (String.trim burst);
            max_queue = parse_time "max_queue" queue;
          }
      | _ -> parse_fail "rate" s

let dir_of_string s =
  let body = unwrap ~prefix:"dir" (String.trim s) in
  let fields = List.map (parse_assoc "dir field") (String.split_on_char ';' body) in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> parse_fail ("dir field " ^ k) s
  in
  {
    drop = parse_float "drop" (get "drop");
    duplicate = parse_float "dup" (get "dup");
    reorder = parse_float "reorder" (get "reorder");
    reorder_window = parse_time "rwin" (get "rwin");
    spike = parse_float "spike" (get "spike");
    spike_delay = parse_time "sdelay" (get "sdelay");
    jitter =
      (let v = String.trim (get "jitter") in
       if v = "none" then None else Some (Dist.spec_of_string v));
    corrupt = parse_float "corrupt" (get "corrupt");
    rate = parse_rate (get "rate");
    blackholes =
      List.map
        (fun w ->
          let bh_from, bh_until = parse_window "blackhole" w in
          { bh_from; bh_until })
        (parse_list "bh" (get "bh"));
  }

let crash_of_string s =
  match String.index_opt s '@' with
  | None -> parse_fail "crash" s
  | Some i -> (
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.index_opt rest '~' with
    | None -> parse_fail "crash" s
    | Some j ->
      let at = parse_time "crash_at" (String.sub rest 0 j) in
      let r = String.sub rest (j + 1) (String.length rest - j - 1) in
      ( name,
        {
          crash_at = at;
          restart_after =
            (if String.trim r = "never" then None else Some (parse_time "restart" r));
        } ))

let plan_of_string s =
  let body = unwrap ~prefix:"plan" (String.trim s) in
  let fields = List.map (parse_assoc "plan field") (String.split_on_char '|' body) in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> parse_fail ("plan field " ^ k) s
  in
  {
    seed = int_of_string (String.trim (get "seed"));
    link = { fwd = dir_of_string (get "fwd"); rev = dir_of_string (get "rev") };
    partitions =
      List.map
        (fun w ->
          let part_from, part_until = parse_window "partition" w in
          { part_from; part_until })
        (parse_list "parts" (get "parts"));
    crashes = List.map crash_of_string (parse_list "crashes" (get "crashes"));
  }

(* ------------------------------------------------------------------ *)
(* Seed-derived random plans                                           *)
(* ------------------------------------------------------------------ *)

(* One canonical generator so the chaos harness and the failover bench
   name the same plan by the same seed.  Draw order is part of the
   seed contract: both directions share one symmetric legacy profile,
   drawn exactly as the original scalar generator did. *)
let random_plan ~seed ~mbs ~horizon =
  let g = Prng.create ~seed in
  let h = Time.to_seconds horizon in
  let d =
    {
      clean_dir with
      drop = Prng.float g 0.12;
      duplicate = Prng.float g 0.10;
      reorder = Prng.float g 0.30;
      reorder_window = Time.seconds (Prng.float g (h /. 20.0));
      spike = Prng.float g 0.05;
      spike_delay = Time.seconds (Prng.float g (h /. 10.0));
    }
  in
  let partitions =
    List.init (Prng.int g 3) (fun _ ->
        let start = Prng.float g h in
        let len = Prng.float g (h /. 8.0) in
        { part_from = Time.seconds start; part_until = Time.seconds (start +. len) })
  in
  let crashes =
    List.filter_map
      (fun mb ->
        if Prng.chance g 0.4 then
          Some
            ( mb,
              {
                crash_at = Time.seconds (Prng.float g h);
                restart_after =
                  (if Prng.chance g 0.75 then
                     Some (Time.seconds (Prng.float g (h /. 4.0)))
                   else None);
              } )
        else None)
      mbs
  in
  { seed; link = symmetric d; partitions; crashes }

(* Production-grade impairment plans: independent per-direction
   profiles with distribution-drawn jitter, token-bucket shaping,
   corruption and blackhole windows, on top of moderated legacy
   pathology.  Rates and windows scale with [horizon] so every fault
   kind is realized on long soaks without permanently severing the
   control plane — blackholes and partitions always end, shapers always
   drain, so a retried operation eventually lands. *)
let random_impairment_plan ~seed ~mbs ~horizon =
  let g = Prng.create ~seed in
  let h = Time.to_seconds horizon in
  let random_dir () =
    let jitter =
      match Prng.int g 5 with
      | 0 -> None
      | 1 -> Some (Dist.Uniform_spec { lo = 0.0; hi = Prng.float g (h /. 2000.0) })
      | 2 -> Some (Dist.Exponential_spec { mean = Prng.float g (h /. 4000.0) })
      | 3 ->
        Some
          (Dist.Lognormal_spec
             { mu = log (Float.max 1e-6 (Prng.float g (h /. 4000.0))); sigma = 0.5 })
      | _ ->
        let lo = Float.max 1e-7 (Prng.float g (h /. 8000.0)) in
        Some (Dist.Pareto_spec { shape = 1.5; lo; hi = lo *. 50.0 })
    in
    let rate =
      if Prng.chance g 0.5 then
        Some
          {
            rate_bytes_per_sec = 2e5 +. Prng.float g 2e6;
            burst_bytes = 2048 + Prng.int g 63488;
            max_queue = Time.seconds (Float.max 1e-4 (h /. 50.0));
          }
      else None
    in
    let blackholes =
      List.init (Prng.int g 3) (fun _ ->
          let start = Prng.float g h in
          let len = Prng.float g (h /. 15.0) in
          { bh_from = Time.seconds start; bh_until = Time.seconds (start +. len) })
    in
    {
      drop = Prng.float g 0.06;
      duplicate = Prng.float g 0.05;
      reorder = Prng.float g 0.20;
      reorder_window = Time.seconds (Prng.float g (h /. 100.0));
      spike = Prng.float g 0.03;
      spike_delay = Time.seconds (Prng.float g (h /. 50.0));
      jitter;
      corrupt = Prng.float g 0.03;
      rate;
      blackholes;
    }
  in
  let fwd = random_dir () in
  let rev = random_dir () in
  let partitions =
    List.init (Prng.int g 3) (fun _ ->
        let start = Prng.float g h in
        let len = Prng.float g (h /. 10.0) in
        { part_from = Time.seconds start; part_until = Time.seconds (start +. len) })
  in
  let crashes =
    List.filter_map
      (fun mb ->
        if Prng.chance g 0.3 then
          Some
            ( mb,
              {
                crash_at = Time.seconds (Prng.float g h);
                restart_after = Some (Time.seconds (Prng.float g (h /. 6.0)));
              } )
        else None)
      mbs
  in
  { seed; link = { fwd; rev }; partitions; crashes }
