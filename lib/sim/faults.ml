type link_profile = {
  drop : float;
  duplicate : float;
  reorder : float;
  reorder_window : Time.t;
  spike : float;
  spike_delay : Time.t;
}

let clean_link =
  {
    drop = 0.0;
    duplicate = 0.0;
    reorder = 0.0;
    reorder_window = Time.zero;
    spike = 0.0;
    spike_delay = Time.zero;
  }

type partition = { part_from : Time.t; part_until : Time.t }
type crash = { crash_at : Time.t; restart_after : Time.t option }

type plan = {
  seed : int;
  link : link_profile;
  partitions : partition list;
  crashes : (string * crash) list;
}

let clean_plan ~seed = { seed; link = clean_link; partitions = []; crashes = [] }

type t = {
  engine : Engine.t;
  plan : plan;
  mutable dropped : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable crashes_fired : int;
  mutable restarts_fired : int;
  (* Registry mirrors of the per-instance counters above, so a chaos
     run's telemetry snapshot shows realized faults without reaching
     for the Faults handle.  Null sinks when uninstrumented. *)
  tel_dropped : Telemetry.counter;
  tel_duplicated : Telemetry.counter;
  tel_delayed : Telemetry.counter;
  tel_crashes : Telemetry.counter;
  tel_restarts : Telemetry.counter;
}

type link = { owner : t; rng : Prng.t }

let create ?telemetry engine plan =
  let c name =
    match telemetry with
    | Some tel -> Telemetry.counter tel name
    | None -> Telemetry.null_counter
  in
  {
    engine;
    plan;
    dropped = 0;
    duplicated = 0;
    delayed = 0;
    crashes_fired = 0;
    restarts_fired = 0;
    tel_dropped = c "faults.dropped";
    tel_duplicated = c "faults.duplicated";
    tel_delayed = c "faults.delayed";
    tel_crashes = c "faults.crashes";
    tel_restarts = c "faults.restarts";
  }

(* Each link draws from its own stream, seeded from the plan seed and
   the link name, so the fault pattern on one channel does not depend
   on traffic volume (and hence draw order) on any other, nor on the
   order links are created in. *)
let link t ~name =
  { owner = t; rng = Prng.create ~seed:(t.plan.seed lxor Hashtbl.hash name) }

let in_partition t now =
  List.exists
    (fun p -> Time.compare now p.part_from >= 0 && Time.compare now p.part_until < 0)
    t.plan.partitions

let jitter l =
  let p = l.owner.plan.link in
  let reorder =
    if Prng.chance l.rng p.reorder then
      Time.seconds (Prng.float l.rng (Time.to_seconds p.reorder_window))
    else Time.zero
  in
  let d =
    if Prng.chance l.rng p.spike then Time.(reorder + p.spike_delay) else reorder
  in
  if Time.compare d Time.zero > 0 then begin
    l.owner.delayed <- l.owner.delayed + 1;
    Telemetry.incr l.owner.tel_delayed
  end;
  d

let deliveries l ~now =
  let t = l.owner in
  let p = t.plan.link in
  if in_partition t now || Prng.chance l.rng p.drop then begin
    t.dropped <- t.dropped + 1;
    Telemetry.incr t.tel_dropped;
    []
  end
  else begin
    let first = jitter l in
    if Prng.chance l.rng p.duplicate then begin
      t.duplicated <- t.duplicated + 1;
      Telemetry.incr t.tel_duplicated;
      [ first; jitter l ]
    end
    else [ first ]
  end

let arm_crashes t ~name ~on_crash ~on_restart =
  List.iter
    (fun (n, c) ->
      if String.equal n name then
        (* Clamp: the MB may be connected after the plan's crash point,
           in which case it goes down immediately. *)
        Engine.call_at t.engine
          (Time.max c.crash_at (Engine.now t.engine))
          (fun () ->
            t.crashes_fired <- t.crashes_fired + 1;
            Telemetry.incr t.tel_crashes;
            on_crash ();
            match c.restart_after with
            | None -> ()
            | Some d ->
              Engine.call_after t.engine d
                (fun () ->
                  t.restarts_fired <- t.restarts_fired + 1;
                  Telemetry.incr t.tel_restarts;
                  on_restart ())
                ())
          ())
    t.plan.crashes

let dropped t = t.dropped
let duplicated t = t.duplicated
let delayed t = t.delayed
let crashes_fired t = t.crashes_fired
let restarts_fired t = t.restarts_fired

(* ------------------------------------------------------------------ *)
(* Seed-derived random plans                                           *)
(* ------------------------------------------------------------------ *)

(* One canonical generator so the chaos harness and the failover bench
   name the same plan by the same seed. *)
let random_plan ~seed ~mbs ~horizon =
  let g = Prng.create ~seed in
  let h = Time.to_seconds horizon in
  let link =
    {
      drop = Prng.float g 0.12;
      duplicate = Prng.float g 0.10;
      reorder = Prng.float g 0.30;
      reorder_window = Time.seconds (Prng.float g (h /. 20.0));
      spike = Prng.float g 0.05;
      spike_delay = Time.seconds (Prng.float g (h /. 10.0));
    }
  in
  let partitions =
    List.init (Prng.int g 3) (fun _ ->
        let start = Prng.float g h in
        let len = Prng.float g (h /. 8.0) in
        { part_from = Time.seconds start; part_until = Time.seconds (start +. len) })
  in
  let crashes =
    List.filter_map
      (fun mb ->
        if Prng.chance g 0.4 then
          Some
            ( mb,
              {
                crash_at = Time.seconds (Prng.float g h);
                restart_after =
                  (if Prng.chance g 0.75 then
                     Some (Time.seconds (Prng.float g (h /. 4.0)))
                   else None);
              } )
        else None)
      mbs
  in
  { seed; link; partitions; crashes }
