(* Post-mortem bundle assembly.  Cold path by construction: nothing
   here runs unless a breach / failure / explicit trigger fires, so
   it allocates freely. *)

type t = {
  span_tail : int;
  mutable telemetry : Telemetry.t option;
  mutable timeseries : Timeseries.t option;
  mutable slo : Slo.t option;
  mutable fault_plan : string option;
  mutable last : string option;
  mutable dumps : int;
}

let create ?(span_tail = 256) ?telemetry ?timeseries ?slo ?fault_plan () =
  let span_tail = if span_tail < 1 then 1 else span_tail in
  { span_tail; telemetry; timeseries; slo; fault_plan; last = None; dumps = 0 }

let set_fault_plan t p = t.fault_plan <- Some p

let json_escape_into buf s =
  Buffer.add_string buf (Printf.sprintf "%S" s)

(* Last [n] spans of the trace ring, oldest-first, as JSON objects.
   fold walks oldest-first, so collect into a small ring and replay. *)
let span_tail_json buf tel n =
  let tr = Telemetry.trace tel in
  let held = Telemetry.Trace.length tr in
  let keep = min n held in
  let skip = held - keep in
  Buffer.add_char buf '[';
  let emitted = ref 0 in
  let _ =
    Telemetry.Trace.fold tr ~init:0
      ~f:(fun i ~actor ~name ~op ~a0 ~a1 ~t0 ~t1 ~detail ->
        if i >= skip then begin
          if !emitted > 0 then Buffer.add_char buf ',';
          incr emitted;
          Buffer.add_string buf "{\"actor\":";
          json_escape_into buf (Telemetry.Trace.string_of_id tr actor);
          Buffer.add_string buf ",\"name\":";
          json_escape_into buf (Telemetry.Trace.string_of_id tr name);
          Buffer.add_string buf
            (Printf.sprintf ",\"op\":%d,\"a0\":%d,\"a1\":%d,\"t0_s\":%.9g,\"t1_s\":%.9g" op a0 a1
               (Time.to_seconds t0) (Time.to_seconds t1));
          if detail <> "" then begin
            Buffer.add_string buf ",\"detail\":";
            json_escape_into buf detail
          end;
          Buffer.add_char buf '}'
        end;
        i + 1)
  in
  Buffer.add_char buf ']'

let dump t ~now ~reason =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"reason\":";
  json_escape_into buf reason;
  Buffer.add_string buf (Printf.sprintf ",\"at_s\":%.9g" (Time.to_seconds now));
  Buffer.add_string buf ",\"fault_plan\":";
  (match t.fault_plan with
  | Some p -> json_escape_into buf p
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"breaches\":";
  (match t.slo with
  | Some s -> Buffer.add_string buf (Slo.breaches_to_json s)
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"series\":";
  (match t.timeseries with
  | Some ts -> Buffer.add_string buf (Timeseries.to_json (Timeseries.snapshot ts))
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"registry\":";
  (match t.telemetry with
  | Some tel -> Buffer.add_string buf (Telemetry.snapshot_to_json (Telemetry.snapshot tel))
  | None -> Buffer.add_string buf "null");
  Buffer.add_string buf ",\"span_tail\":";
  (match t.telemetry with
  | Some tel -> span_tail_json buf tel t.span_tail
  | None -> Buffer.add_string buf "null");
  Buffer.add_char buf '}';
  let bundle = Buffer.contents buf in
  t.last <- Some bundle;
  t.dumps <- t.dumps + 1;
  bundle

let dump_to_file t ~now ~reason ~path =
  let bundle = dump t ~now ~reason in
  let oc = open_out path in
  output_string oc bundle;
  output_char oc '\n';
  close_out oc

let arm t ~engine =
  match t.slo with
  | None -> invalid_arg "Flight_recorder.arm: no slo attached"
  | Some s ->
      Slo.set_on_breach s (fun br ->
          if t.dumps = 0 then
            ignore
              (dump t ~now:(Engine.now engine)
                 ~reason:(Printf.sprintf "slo breach: %s on %s" br.Slo.br_objective br.Slo.br_series)))

let last_bundle t = t.last
let dumps t = t.dumps
